"""Optional compiled fast paths for the sketch kernels (GIL-releasing).

The pure-NumPy kernels in :mod:`repro.sketch.kernels` hold the GIL for the
whole scatter/Horner pass, so the ``threads`` executor serializes exactly
where the work is.  This module provides two interchangeable compiled
backends for the same five primitives — the Mersenne-61 Horner loops
(stacked and grid form), the fused scalar/vector scatter-adds, and the
row-bincount linear map:

``cffi``
    A small C shim compiled once per source revision with the system C
    compiler into a per-user cache directory and loaded in ABI mode.
    cffi releases the GIL around every foreign call, and the C modular
    multiply uses ``__uint128_t`` — the mathematically exact
    ``(a * b) mod (2^61 - 1)``, hence bit-identical to the NumPy
    split-multiply reduction.

``numba``
    ``@njit(nogil=True, cache=True)`` mirrors of the same loops (see
    :mod:`repro.sketch._native_numba`), using the NumPy split-multiply
    verbatim in uint64 so every intermediate matches.

Both backends preserve the accumulation *order* of the NumPy kernels —
scatters accumulate into a zeroed per-row temporary in batch order and are
then added elementwise into the table, exactly like
``table[row] += np.bincount(...)`` — so float results are bit-identical,
not merely close.  The golden-state sha256 pins in
``tests/sketch/test_golden_state.py`` are asserted under every available
backend to prove it.

Selection
---------
The default is ``numpy`` (no compiled code runs unless asked).  Set the
``REPRO_KERNELS`` environment variable to ``auto`` (first available of
numba, cffi), ``numba``, ``cffi``, or ``numpy``; or call
:func:`set_backend` / :func:`use_backend` programmatically.  An explicit
env request for an unavailable backend falls back to NumPy with a warning
(so a stray variable cannot break imports); :func:`set_backend` raises
instead, which is what the tests and CI use to guarantee the compiled path
actually ran.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
import warnings
from contextlib import contextmanager
from typing import Iterator

import numpy as np

__all__ = [
    "active",
    "available_backends",
    "current_backend",
    "probe_errors",
    "set_backend",
    "use_backend",
]

#: Recognized backend names, in ``auto`` preference order (numpy last).
BACKENDS = ("numba", "cffi", "numpy")

_C_DECLS = """
void repro_horner(const uint64_t *coeffs, const uint64_t *keys,
                  uint64_t *out, int64_t depth, int64_t batch, int64_t k);
void repro_horner_grid(const uint64_t *coeffs, const uint64_t *keys,
                       uint64_t *out, int64_t depth, int64_t per, int64_t k);
void repro_scatter_add_scalar(double *table, const int64_t *buckets,
                              const double *signs, const double *deltas,
                              int64_t depth, int64_t width, int64_t batch,
                              double *tmp);
void repro_scatter_add_vector(double *table, const int64_t *buckets,
                              const double *signs, const double *deltas,
                              int64_t depth, int64_t width, int64_t m,
                              int64_t batch, double *tmp);
void repro_bincount_f64(const int64_t *rows, const double *weights,
                        double *out, int64_t batch, int64_t m);
void repro_bincount_i64(const int64_t *rows, const int64_t *weights,
                        int64_t *out, int64_t batch, int64_t m);
"""

# The scatter kernels accumulate into a zeroed temporary in batch order and
# then add elementwise into the table — the same two-step float association
# as `table[row] += np.bincount(...)`, which is what keeps them bit-exact.
# Integer adds go through uint64 casts: signed overflow is UB in C, while
# NumPy's int64 accumulation wraps; the cast reproduces the wrap exactly.
_C_SOURCE = r"""
#include <stdint.h>
#include <string.h>

#define P61 2305843009213693951ULL

static inline uint64_t mulmod61(uint64_t a, uint64_t b) {
    unsigned __int128 p = (unsigned __int128)a * (unsigned __int128)b;
    uint64_t r = ((uint64_t)p & P61) + (uint64_t)(p >> 61);
    r = (r & P61) + (r >> 61);
    if (r >= P61) r -= P61;
    return r;
}

void repro_horner(const uint64_t *coeffs, const uint64_t *keys,
                  uint64_t *out, int64_t depth, int64_t batch, int64_t k) {
    for (int64_t d = 0; d < depth; ++d) {
        const uint64_t *c = coeffs + d * k;
        uint64_t *row = out + d * batch;
        for (int64_t t = 0; t < batch; ++t) {
            uint64_t key = keys[t];
            uint64_t acc = 0;
            for (int64_t j = 0; j < k; ++j) {
                acc = mulmod61(acc, key) + c[j];
                if (acc >= P61) acc -= P61;
            }
            row[t] = acc;
        }
    }
}

void repro_horner_grid(const uint64_t *coeffs, const uint64_t *keys,
                       uint64_t *out, int64_t depth, int64_t per, int64_t k) {
    for (int64_t d = 0; d < depth; ++d) {
        const uint64_t *c = coeffs + d * k;
        const uint64_t *kd = keys + d * per;
        uint64_t *row = out + d * per;
        for (int64_t t = 0; t < per; ++t) {
            uint64_t key = kd[t];
            uint64_t acc = 0;
            for (int64_t j = 0; j < k; ++j) {
                acc = mulmod61(acc, key) + c[j];
                if (acc >= P61) acc -= P61;
            }
            row[t] = acc;
        }
    }
}

void repro_scatter_add_scalar(double *table, const int64_t *buckets,
                              const double *signs, const double *deltas,
                              int64_t depth, int64_t width, int64_t batch,
                              double *tmp) {
    for (int64_t r = 0; r < depth; ++r) {
        const int64_t *b = buckets + r * batch;
        memset(tmp, 0, (size_t)width * sizeof(double));
        if (signs != NULL) {
            const double *s = signs + r * batch;
            for (int64_t t = 0; t < batch; ++t)
                tmp[b[t]] += s[t] * deltas[t];
        } else {
            for (int64_t t = 0; t < batch; ++t)
                tmp[b[t]] += deltas[t];
        }
        double *row = table + r * width;
        for (int64_t i = 0; i < width; ++i)
            row[i] += tmp[i];
    }
}

void repro_scatter_add_vector(double *table, const int64_t *buckets,
                              const double *signs, const double *deltas,
                              int64_t depth, int64_t width, int64_t m,
                              int64_t batch, double *tmp) {
    for (int64_t r = 0; r < depth; ++r) {
        const int64_t *b = buckets + r * batch;
        const double *s = signs + r * batch;
        double *base = table + r * width * m;
        for (int64_t col = 0; col < m; ++col) {
            memset(tmp, 0, (size_t)width * sizeof(double));
            for (int64_t t = 0; t < batch; ++t)
                tmp[b[t]] += s[t] * deltas[t * m + col];
            for (int64_t i = 0; i < width; ++i)
                base[i * m + col] += tmp[i];
        }
    }
}

void repro_bincount_f64(const int64_t *rows, const double *weights,
                        double *out, int64_t batch, int64_t m) {
    for (int64_t col = 0; col < m; ++col)
        for (int64_t t = 0; t < batch; ++t)
            out[rows[t] * m + col] += weights[t * m + col];
}

void repro_bincount_i64(const int64_t *rows, const int64_t *weights,
                        int64_t *out, int64_t batch, int64_t m) {
    for (int64_t t = 0; t < batch; ++t)
        for (int64_t col = 0; col < m; ++col) {
            int64_t *o = out + rows[t] * m + col;
            *o = (int64_t)((uint64_t)*o + (uint64_t)weights[t * m + col]);
        }
}
"""


class _CffiBackend:
    """ABI-mode wrapper around the compiled C shim (GIL released per call)."""

    name = "cffi"

    def __init__(self, ffi, lib) -> None:
        self._ffi = ffi
        self._lib = lib

    def _buf(self, ctype: str, arr: np.ndarray):
        return self._ffi.from_buffer(ctype, arr, require_writable=False)

    def _out(self, ctype: str, arr: np.ndarray):
        return self._ffi.from_buffer(ctype, arr, require_writable=True)

    def horner(self, coeffs: np.ndarray, keys: np.ndarray) -> np.ndarray:
        depth, k = coeffs.shape
        batch = keys.shape[0]
        out = np.empty((depth, batch), dtype=np.uint64)
        self._lib.repro_horner(
            self._buf("uint64_t[]", coeffs),
            self._buf("uint64_t[]", keys),
            self._out("uint64_t[]", out),
            depth,
            batch,
            k,
        )
        return out

    def horner_grid(self, coeffs: np.ndarray, keys: np.ndarray) -> np.ndarray:
        depth, k = coeffs.shape
        per = int(np.prod(keys.shape[1:], dtype=np.int64)) if keys.ndim > 1 else 1
        out = np.empty(keys.shape, dtype=np.uint64)
        self._lib.repro_horner_grid(
            self._buf("uint64_t[]", coeffs),
            self._buf("uint64_t[]", keys),
            self._out("uint64_t[]", out),
            depth,
            per,
            k,
        )
        return out

    def scatter_add_scalar(
        self,
        table: np.ndarray,
        buckets: np.ndarray,
        signs: np.ndarray | None,
        deltas: np.ndarray,
    ) -> None:
        depth, width = table.shape
        tmp = np.empty(width, dtype=np.float64)
        self._lib.repro_scatter_add_scalar(
            self._out("double[]", table),
            self._buf("int64_t[]", buckets),
            self._ffi.NULL if signs is None else self._buf("double[]", signs),
            self._buf("double[]", deltas),
            depth,
            width,
            deltas.shape[0],
            self._out("double[]", tmp),
        )

    def scatter_add_vector(
        self,
        table: np.ndarray,
        buckets: np.ndarray,
        signs: np.ndarray,
        deltas: np.ndarray,
    ) -> None:
        depth, width, m = table.shape
        tmp = np.empty(width, dtype=np.float64)
        self._lib.repro_scatter_add_vector(
            self._out("double[]", table),
            self._buf("int64_t[]", buckets),
            self._buf("double[]", signs),
            self._buf("double[]", deltas),
            depth,
            width,
            m,
            deltas.shape[0],
            self._out("double[]", tmp),
        )

    def bincount_f64(
        self, rows: np.ndarray, weights: np.ndarray, out: np.ndarray
    ) -> None:
        m = 1 if weights.ndim == 1 else weights.shape[1]
        self._lib.repro_bincount_f64(
            self._buf("int64_t[]", rows),
            self._buf("double[]", weights),
            self._out("double[]", out),
            rows.shape[0],
            m,
        )

    def bincount_i64(
        self, rows: np.ndarray, weights: np.ndarray, out: np.ndarray
    ) -> None:
        m = 1 if weights.ndim == 1 else weights.shape[1]
        self._lib.repro_bincount_i64(
            self._buf("int64_t[]", rows),
            self._buf("int64_t[]", weights),
            self._out("int64_t[]", out),
            rows.shape[0],
            m,
        )


class _NumbaBackend:
    """Thin adapter over the jitted loops in :mod:`._native_numba`."""

    name = "numba"

    def __init__(self, mod) -> None:
        self._mod = mod

    def horner(self, coeffs: np.ndarray, keys: np.ndarray) -> np.ndarray:
        out = np.empty((coeffs.shape[0], keys.shape[0]), dtype=np.uint64)
        self._mod.horner(coeffs, keys, out)
        return out

    def horner_grid(self, coeffs: np.ndarray, keys: np.ndarray) -> np.ndarray:
        out = np.empty(keys.shape, dtype=np.uint64)
        flat = keys.reshape(keys.shape[0], -1)
        self._mod.horner_grid(coeffs, flat, out.reshape(flat.shape))
        return out

    def scatter_add_scalar(
        self,
        table: np.ndarray,
        buckets: np.ndarray,
        signs: np.ndarray | None,
        deltas: np.ndarray,
    ) -> None:
        if signs is None:
            self._mod.scatter_add_scalar_unsigned(table, buckets, deltas)
        else:
            self._mod.scatter_add_scalar_signed(table, buckets, signs, deltas)

    def scatter_add_vector(
        self,
        table: np.ndarray,
        buckets: np.ndarray,
        signs: np.ndarray,
        deltas: np.ndarray,
    ) -> None:
        self._mod.scatter_add_vector(table, buckets, signs, deltas)

    def bincount_f64(
        self, rows: np.ndarray, weights: np.ndarray, out: np.ndarray
    ) -> None:
        w2 = weights.reshape(weights.shape[0], -1) if weights.ndim == 1 else weights
        o2 = out.reshape(out.shape[0], -1) if out.ndim == 1 else out
        self._mod.bincount_f64(rows, w2, o2)

    def bincount_i64(
        self, rows: np.ndarray, weights: np.ndarray, out: np.ndarray
    ) -> None:
        w2 = weights.reshape(weights.shape[0], -1) if weights.ndim == 1 else weights
        o2 = out.reshape(out.shape[0], -1) if out.ndim == 1 else out
        self._mod.bincount_i64(rows, w2, o2)


_probe_errors: dict[str, str] = {}
_probe_cache: dict[str, object] = {}


def _cache_dir() -> str:
    root = os.environ.get("REPRO_KERNEL_CACHE")
    if not root:
        xdg = os.environ.get("XDG_CACHE_HOME") or os.path.join(
            os.path.expanduser("~"), ".cache"
        )
        root = os.path.join(xdg, "repro-kernels")
    return root


def _build_cffi():
    import cffi  # noqa: F401  (ImportError -> backend unavailable)

    compiler = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if compiler is None:
        raise RuntimeError("no C compiler (cc/gcc/clang) on PATH")
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    cache = _cache_dir()
    lib_path = os.path.join(cache, f"repro_kernels_{digest}.so")
    if not os.path.exists(lib_path):
        os.makedirs(cache, exist_ok=True)
        src_path = os.path.join(cache, f"repro_kernels_{digest}.c")
        with open(src_path, "w") as fh:
            fh.write(_C_SOURCE)
        # Compile to a unique temp name, then atomically rename: concurrent
        # first-use from several processes races safely.
        fd, tmp_path = tempfile.mkstemp(suffix=".so", dir=cache)
        os.close(fd)
        try:
            proc = subprocess.run(
                [compiler, "-O2", "-shared", "-fPIC", "-o", tmp_path, src_path],
                capture_output=True,
                text=True,
            )
            if proc.returncode != 0:
                raise RuntimeError(f"kernel compile failed: {proc.stderr.strip()}")
            os.replace(tmp_path, lib_path)
        finally:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
    ffi = cffi.FFI()
    ffi.cdef(_C_DECLS)
    return _CffiBackend(ffi, ffi.dlopen(lib_path))


def _build_numba():
    from repro.sketch import _native_numba  # ImportError -> unavailable

    return _NumbaBackend(_native_numba)


def _probe(name: str):
    """Build (and memoize) a backend; record the failure reason on error."""
    if name in _probe_cache:
        return _probe_cache[name]
    builder = {"cffi": _build_cffi, "numba": _build_numba}[name]
    try:
        backend = builder()
    except Exception as exc:  # any failure just means "unavailable"
        _probe_errors[name] = f"{type(exc).__name__}: {exc}"
        backend = None
    _probe_cache[name] = backend
    return backend


#: The active backend object (``None`` means the pure-NumPy kernels run).
_backend = None
_backend_name = "numpy"


def active():
    """The live backend adapter, or ``None`` when the NumPy path is active."""
    return _backend


def current_backend() -> str:
    """Name of the active backend: ``numpy``, ``numba``, or ``cffi``."""
    return _backend_name


def available_backends() -> tuple[str, ...]:
    """Backends that can actually run here (always ends with ``numpy``)."""
    names = [n for n in ("numba", "cffi") if _probe(n) is not None]
    return tuple(names) + ("numpy",)


def probe_errors() -> dict[str, str]:
    """Why unavailable backends failed to load (for diagnostics/benchmarks)."""
    return dict(_probe_errors)


def set_backend(name: str) -> str:
    """Activate a kernel backend; returns the resolved backend name.

    ``auto`` picks the first available of numba, cffi, falling back to
    numpy.  Asking for an unavailable backend by name raises
    :class:`RuntimeError` (use the ``REPRO_KERNELS`` env var for the
    warn-and-fall-back behaviour).
    """
    global _backend, _backend_name
    if name == "numpy":
        _backend, _backend_name = None, "numpy"
    elif name == "auto":
        for candidate in ("numba", "cffi"):
            backend = _probe(candidate)
            if backend is not None:
                _backend, _backend_name = backend, candidate
                break
        else:
            _backend, _backend_name = None, "numpy"
    elif name in ("numba", "cffi"):
        backend = _probe(name)
        if backend is None:
            raise RuntimeError(
                f"kernel backend {name!r} unavailable: "
                f"{_probe_errors.get(name, 'unknown error')}"
            )
        _backend, _backend_name = backend, name
    else:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of "
            f"{('numpy', 'auto') + BACKENDS[:2]}"
        )
    return _backend_name


@contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Temporarily activate ``name``, restoring the previous backend after."""
    prev = _backend_name
    resolved = set_backend(name)
    try:
        yield resolved
    finally:
        set_backend(prev)


def _init_from_env() -> None:
    requested = os.environ.get("REPRO_KERNELS", "numpy").strip().lower()
    if requested in ("", "numpy"):
        return
    try:
        set_backend(requested)
    except (RuntimeError, ValueError) as exc:
        warnings.warn(
            f"REPRO_KERNELS={requested!r} not usable ({exc}); "
            "falling back to the pure-NumPy kernels",
            RuntimeWarning,
            stacklevel=2,
        )


_init_from_env()
