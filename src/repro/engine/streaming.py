"""Streaming continuous-monitoring runtime over the star topology.

The engine's protocols (:mod:`repro.engine`) are *one-shot*: sites sketch a
static shard, ship one summary, and the protocol ends.  This module adds the
execution mode the distributed functional monitoring literature is actually
about: sites receive batched turnstile updates to their rows of ``A`` over a
sequence of *epochs*, ship **serialized sketch deltas** upstream (the
byte-exact wire encoding of :mod:`repro.comm.wire`, so the network meters
real encoded bytes instead of formula-estimated bits), and the coordinator
keeps live estimates of ``C = A B`` — ``l_p`` norms, support size, heavy
hitters, support samples — between syncs.

Under a persistent concurrent runtime (``Runtime(persistent=True)``) the
session runs in *resident mode*: per-site state lives in dedicated workers
on shared-memory buffers, ingestion is applied asynchronously in those
workers, and epoch boundaries merge the deltas zero-copy while the workers
encode the wire payloads concurrently.  Every output — estimates, payload
bytes, network meters, epoch reports — is bit-identical to the serial
session; resident mode is purely a throughput mode.

Refresh policies
----------------
``"every-epoch"``
    Every site with pending updates uploads its delta at every epoch
    boundary — the continuous-monitoring baseline.
``"threshold"``
    A site uploads only when its pending update mass exceeds ``threshold``
    times the mass it has already shipped (the classic local-drift trigger),
    so quiet sites stay silent and skewed workloads ship far fewer bytes.
    Live estimates are stale by at most the un-shipped drift.

Equivalence discipline
----------------------
A :class:`StreamingSession` is also a full
:class:`repro.engine.api.EstimatorBase`: every one-shot query (``lp_norm``,
``l0_sample``, ``heavy_hitters``, ...) runs the engine protocol over the
*accumulated* shards with the same seed-stream discipline as
:class:`repro.multiparty.estimator.ClusterEstimator`.  Because turnstile
ingestion is exact integer accumulation, a session that ingested a shard in
any epoch chunking answers those queries **bit-for-bit identically** — same
estimates, same bit counts, same rounds — to a one-shot cluster built from
the final shards with the same seed (pinned in
``tests/engine/test_streaming.py``).  The live merged summaries obey the
same discipline: after a final sync they equal, byte for byte, the
summaries of a one-shot run over the full data.

Live monitoring uses the four mergeable sketch families: AMS (live
``||C||_2^2``), the ``l_0`` sketch (live ``||C||_0``), the ``l_0`` sampler
(live support samples), and a vector-valued CountSketch (live heavy
hitters).  All are linear in ``A``, so the coordinator turns merged
``A``-space states into ``C``-space summaries by one multiplication with
its own matrix ``B``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.comm import wire
from repro.comm.conditions import NetworkConditions
from repro.comm.network import Network, TreeNetwork
from repro.comm.protocol import ProtocolResult
from repro.comm.transport import IN_PROCESS, Transport
from repro.comm.tree import TreeSpec
from repro.core.result import HeavyHitterOutput, SampleOutput
from repro.engine.api import EstimatorBase, is_binary_data
from repro.engine.base import StarProtocol
from repro.engine.l0_sampling import finish_l0_sample
from repro.engine.topology import normalize_tree
from repro.engine.robust import RobustPolicy, robust_merge_states
from repro.engine.runtime import (
    SERIAL_RUNTIME,
    QuorumPolicy,
    Runtime,
    SiteDroppedError,
)
from repro.sketch.ams import AmsSketch
from repro.sketch.countsketch import CountSketch
from repro.sketch.l0_sampler import L0Sampler
from repro.sketch.l0_sketch import L0Sketch
from repro.sketch import shm as _shm
from repro.sketch.mergeable import MergeableSketch
from repro.sketch.serialization import deserialize_deltas, serialize_deltas

__all__ = [
    "EpochReport",
    "REFRESH_POLICIES",
    "SessionClosedError",
    "StreamingSession",
]


class SessionClosedError(RuntimeError):
    """A mutation was attempted on a closed :class:`StreamingSession`.

    The session lifecycle is a two-state machine: *open* (ingest, epoch
    boundaries, drop/restore all allowed) and *closed* (the accumulated
    data stays queryable — one-shot and live queries keep working — but
    every mutating operation raises this).  Subclasses ``RuntimeError`` so
    pre-existing callers that caught the generic error keep working.
    """

#: Supported refresh policies.
EVERY_EPOCH = "every-epoch"
THRESHOLD = "threshold"
REFRESH_POLICIES = (EVERY_EPOCH, THRESHOLD)

#: Message label for delta uploads (shows up in ``bits_by_label``).
DELTA_LABEL = "stream/delta"

#: Message label for late delta arrivals (straggler uploads folded in after
#: their epoch's quorum answered).
LATE_DELTA_LABEL = "stream/late-delta"

#: Fixed order of the monitored sketch families inside a delta bundle.
FAMILIES = ("ams", "l0", "sampler", "countsketch")

#: Resident mode: maximum un-drained submissions per site worker.  Each
#: completed task leaves a small queued reply in the worker→coordinator
#: pipe; draining every so often keeps both pipe buffers bounded (an
#: unbounded backlog could fill them and deadlock the pair).
_MAX_INFLIGHT = 64



@dataclass
class EpochReport:
    """What one epoch boundary shipped.

    ``dropped`` lists the sites that were partitioned from the coordinator
    at this boundary (their pending deltas stay queued locally); ``shipped``
    marks who actually uploaded, so the two together report exactly which
    sites contributed to the coordinator's live summaries.

    Under a per-site deadline (``StreamingSession(quorum=...)`` or
    ``NetworkConditions(deadline=...)``) ``late`` lists the *stragglers* of
    this boundary: sites that shipped but whose upload missed the deadline,
    so it is queued — not merged, not metered — until it arrives.
    ``late_merged`` lists the earlier stragglers whose queued uploads were
    folded into the live summaries at this boundary (their bytes are
    metered here, labelled ``stream/late-delta``).  ``quorum_met`` is
    ``False`` when a quorum policy is active and fewer than ``n - f`` sites
    were connected and on time.
    """

    epoch: int
    shipped: dict[str, bool] = field(default_factory=dict)
    upload_bytes: dict[str, int] = field(default_factory=dict)
    total_bytes: int = 0
    cumulative_bytes: int = 0
    dropped: list[str] = field(default_factory=list)
    late: list[str] = field(default_factory=list)
    late_merged: list[str] = field(default_factory=list)
    quorum_met: bool = True
    #: Set by the multi-tenant session manager when a quota throttle closed
    #: this epoch without shipping (the deltas stay queued at the sites).
    throttled: bool = False


class _SiteStream:
    """One site's streaming state: accumulated shard + pending sketch deltas.

    In resident mode (``Runtime(persistent=True)`` with a concurrent
    executor) the shard and pending sketch states live inside a dedicated
    worker instead: ``shard`` becomes the coordinator's view of the
    worker's shared-memory segment and ``pending`` is ``None`` — only the
    shipping counters stay here, so the refresh policy never needs a
    round-trip.
    """

    def __init__(
        self,
        index: int,
        name: str,
        row_offset: int,
        num_rows: int,
        inner_dim: int,
        templates: dict[str, MergeableSketch],
    ) -> None:
        self.index = index
        self.name = name
        self.row_offset = row_offset
        self.num_rows = num_rows
        self.shard = np.zeros((num_rows, inner_dim), dtype=np.int64)
        self.pending: dict[str, MergeableSketch] | None = {
            key: sketch.empty_copy() for key, sketch in templates.items()
        }
        self.pending_updates = 0
        self.pending_mass = 0.0
        self.shipped_mass = 0.0

    def ingest(self, rows: np.ndarray, deltas: np.ndarray) -> None:
        np.add.at(self.shard, rows - self.row_offset, deltas)
        for sketch in self.pending.values():
            sketch.update_many(rows, deltas)
        self.pending_updates += rows.shape[0]
        self.pending_mass += float(np.abs(deltas).sum())

    def should_ship(self, refresh: str, threshold: float, *, force: bool) -> bool:
        if self.pending_updates == 0:
            return False
        if force or refresh == EVERY_EPOCH:
            return True
        if math.isinf(threshold):
            return False  # explicit policy: only forced syncs ever ship
        if self.shipped_mass == 0:
            return True  # first drift always ships (nothing to compare against)
        return self.pending_mass > threshold * self.shipped_mass

    def mark_shipped(self) -> None:
        """Reset the pending state after its serialization went on the wire.

        The serialization half is :func:`repro.sketch.serialization
        .serialize_deltas` (fanned out by ``end_epoch``); splitting the two
        halves is what lets the encoding run in a worker process while the
        reset stays in the parent.  In resident mode only the counters live
        here — the sketch reset is a :func:`_w_reset` submitted to the
        site's worker.
        """
        if self.pending is not None:
            for sketch in self.pending.values():
                sketch.load_state_array(None)
        self.shipped_mass += self.pending_mass
        self.pending_mass = 0.0
        self.pending_updates = 0

    def clear_pending(self) -> None:
        """Discard queued (un-shipped) deltas without crediting them as
        shipped — the session-close path, where a dropped site's backlog
        must not survive into the closed session's counters."""
        if self.pending is not None:
            for sketch in self.pending.values():
                sketch.load_state_array(None)
        self.pending_mass = 0.0
        self.pending_updates = 0


# --------------------------------------------------------------- resident mode
#
# With a persistent concurrent runtime each site's streaming state is *pinned*
# inside a dedicated resident worker: the accumulated shard and all four
# pending sketch states are shared-memory arrays the worker scatters updates
# into (``pin_state_buffer`` / ``pin_table_buffer``), so per-epoch IPC shrinks
# to update batches in and payload bytes + counters out.  At an epoch boundary
# the coordinator merges each shipping site's deltas straight out of its own
# view of those segments — zero copies, no serialization on the merge path —
# while the workers concurrently encode the identical state for the wire
# (both sides only read until the post-merge reset is submitted; per-slot
# FIFO ordering makes the reset safe).  The functions below are the worker
# halves; they must stay module-level picklables for the process pool.


def _resident_site_init(
    buffers: dict[str, Any],
    templates: dict[str, MergeableSketch],
    row_offset: int,
    untrack: bool,
) -> dict[str, Any]:
    """Build one site's worker-resident state around the shared buffers.

    ``buffers`` maps ``"shard"`` and each sketch family to either a
    :class:`repro.sketch.shm.ShmBlock` (process workers attach it) or a
    ready numpy view (thread workers share the coordinator's address
    space, so no attach round-trip is needed).
    """
    views: dict[str, np.ndarray] = {}
    segments = []
    for key, ref in buffers.items():
        if isinstance(ref, _shm.ShmBlock):
            view, segment = _shm.attach(ref, untrack=untrack)
            segments.append(segment)
        else:
            view = ref
        views[key] = view
    pending: dict[str, MergeableSketch] = {}
    for key, template in templates.items():
        sketch = template.empty_copy()
        if key == "countsketch":
            sketch.pin_table_buffer(views[key])
        else:
            sketch.pin_state_buffer(views[key])
        pending[key] = sketch
    return {
        "shard": views["shard"],
        "row_offset": row_offset,
        "pending": pending,
        "segments": segments,  # keep the mappings alive for the worker's life
    }


def _w_ingest(state: dict[str, Any], rows: np.ndarray, deltas: np.ndarray) -> None:
    """Apply one validated update batch to the worker-resident site state."""
    np.add.at(state["shard"], rows - state["row_offset"], deltas)
    for sketch in state["pending"].values():
        sketch.update_many(rows, deltas)


def _w_serialize(state: dict[str, Any]) -> bytes:
    """Encode the pending deltas for the wire (reads the pinned state only)."""
    return serialize_deltas(state["pending"])


def _w_reset(state: dict[str, Any]) -> None:
    """Reset the pending sketches after the coordinator merged their state."""
    for sketch in state["pending"].values():
        sketch.load_state_array(None)


@dataclass
class _ResidentSites:
    """Coordinator-side handle to the resident site workers."""

    pool: Any  # repro.engine.runtime.ResidentPool
    arena: _shm.ShmArena
    #: Per site: the coordinator's views of that site's shm buffers
    #: (``"shard"`` + one per sketch family).
    views: list[dict[str, np.ndarray]]


class StreamingSession(EstimatorBase):
    """Continuous monitoring of ``C = A B`` under streaming updates to ``A``.

    Parameters
    ----------
    row_counts:
        Rows of ``A`` owned by each site, in global row order (fixes the
        partition; ``k = len(row_counts)``).  Shards start empty and grow by
        turnstile ingestion.
    b:
        The coordinator's (static) matrix; ``b.shape[0]`` is the common
        column count of the shards.
    seed:
        Base seed.  One-shot sync queries derive per-query seeds exactly
        like :class:`~repro.multiparty.estimator.ClusterEstimator`; the
        monitoring sketches use an independent stream derived from the same
        seed, so streaming never perturbs the sync transcripts.
    refresh:
        ``"every-epoch"`` or ``"threshold"`` (see the module docstring).
    threshold:
        Drift fraction for the threshold policy.  A site's first non-empty
        drift always ships; ``inf`` means sites ship only on forced syncs.
    monitor_epsilon:
        Target accuracy of the live ``l_0`` / ``l_2`` monitors (sizes the
        AMS and ``l_0`` sketches).
    hh_depth, hh_width:
        Shape of the vector-valued CountSketch behind live heavy hitters.
    sampler_repetitions:
        Repetitions inside the live ``l_0`` sampler.
    sketch_mode:
        Randomness mode of the monitoring sketches: ``"dense"`` (default,
        per-coordinate draws — byte-compatible with all recorded
        transcripts) or ``"hash"`` (lazy hashed randomness: monitor-sketch
        construction cost and memory become independent of the row count).
        CountSketch hashes lazily in both modes.  Note the session itself
        still keeps a dense ``O(rows x inner_dim)`` accumulated shard per
        site for the one-shot queries, so the row count must remain
        RAM-sized; ``"hash"`` removes the sketches from that bill, not the
        shards.
    runtime:
        Optional :class:`repro.engine.runtime.Runtime`.  Delta
        serialization at epoch close fans out through it, and one-shot
        queries execute under it (executor choice + dropout policy for
        queries issued while sites are dropped).  A *persistent* runtime
        with a concurrent executor switches the session into resident
        mode: each site's shard and pending sketch states are pinned in a
        dedicated worker, backed by shared memory the coordinator merges
        from zero-copy (see the ``_resident_site_init`` block above).
        Outputs, meters and transcripts are identical in every mode; call
        :meth:`close` (or use the session as a context manager) to release
        the workers and segments deterministically.
    conditions:
        Optional :class:`repro.comm.conditions.NetworkConditions` — the
        session's network then prices shipped deltas into a simulated
        makespan (``session.network.makespan()``), and one-shot queries
        inherit the link models.  Sites the conditions declare ``dropped``
        start partitioned (exactly as if :meth:`drop_site` had been called),
        so epoch boundaries and queries see one consistent fault state;
        :meth:`restore_site` reconnects them.
    dropout:
        Epoch-close policy for sites marked dropped via :meth:`drop_site`:
        ``"exclude"`` (default) keeps their deltas queued locally — they
        ship on a later epoch after :meth:`restore_site`, restoring the
        streamed == one-shot summary identity — while ``"fail"`` raises
        :class:`repro.engine.runtime.SiteDroppedError` as soon as a dropped
        site *would* have shipped.
    quorum:
        Optional :class:`repro.engine.runtime.QuorumPolicy` (or an
        ``(n, f)`` pair).  Its ``deadline`` (falling back to
        ``conditions.deadline``) turns slow shippers into *stragglers*:
        their uploads are queued and folded in on arrival (the next
        boundary, or :meth:`collect_late`) instead of blocking the epoch —
        and because merges are linear sums, the folded state is
        bit-identical to an on-time ship.  Epoch reports carry
        ``late`` / ``late_merged`` / ``quorum_met``.  Defaults to the
        runtime's quorum policy when one is set.
    robust:
        Optional :class:`repro.engine.robust.RobustPolicy` (or a bare
        ``f``).  The session then additionally keeps each site's
        *cumulative* shipped state, so live queries can answer through the
        coordinatewise robust merge (``live_lp_norm(..., robust=True)``)
        tolerating up to f corrupt sites.  Any
        :class:`~repro.engine.robust.FaultPlan` on the conditions corrupts
        the named sites' shipped deltas (state and wire bytes alike) —
        not their local shards — so one-shot queries stay clean while the
        live summaries feel the attack, exactly the Byzantine scenario.
    """

    def __init__(
        self,
        row_counts: Sequence[int],
        b: np.ndarray,
        *,
        seed: int | None = None,
        refresh: str = EVERY_EPOCH,
        threshold: float = 0.2,
        monitor_epsilon: float = 0.25,
        hh_depth: int = 5,
        hh_width: int = 64,
        sampler_repetitions: int = 8,
        sketch_mode: str = "dense",
        site_names: Sequence[str] | None = None,
        runtime: Runtime | None = None,
        conditions: NetworkConditions | None = None,
        transport: Transport | None = None,
        dropout: str = "exclude",
        quorum: "QuorumPolicy | tuple | int | None" = None,
        robust: "RobustPolicy | int | None" = None,
        tree: "TreeSpec | int | None" = None,
    ) -> None:
        super().__init__(
            seed=seed, runtime=runtime, conditions=conditions, transport=transport
        )
        if dropout not in ("fail", "exclude"):
            raise ValueError(f"dropout must be 'fail' or 'exclude', got {dropout!r}")
        self.dropout = dropout
        if quorum is None and runtime is not None:
            quorum = runtime.quorum
        self.quorum = QuorumPolicy.coerce(quorum)
        self.robust = RobustPolicy.coerce(robust)
        self._faults = conditions.faults if conditions is not None else None
        #: Straggler uploads awaiting arrival: (site name, wire payload).
        self._late_queue: list[tuple[str, bytes]] = []
        self._dropped: set[int] = set()  # seeded from conditions.dropped below
        row_counts = [int(count) for count in row_counts]
        if not row_counts or any(count < 0 for count in row_counts):
            raise ValueError(
                "row_counts must be a non-empty list of non-negative ints"
            )
        if sum(row_counts) < 1:
            # Zero-row *sites* are fine (they simply never ingest); a
            # zero-row *universe* leaves the sketches nothing to hash.
            raise ValueError("row_counts must cover at least one row in total")
        if refresh not in REFRESH_POLICIES:
            raise ValueError(f"refresh must be one of {REFRESH_POLICIES}, got {refresh!r}")
        if math.isnan(threshold) or threshold < 0:
            raise ValueError(
                "threshold must be non-negative (inf = ship only on sync)"
            )
        b = np.asarray(b)
        if b.ndim != 2:
            raise ValueError("b must be a 2-dimensional matrix")
        self.b = b
        # B is static for the session's lifetime: both live-query views are
        # materialized once.  Integer dtypes widen to int64 for the exact
        # paths; float matrices pass through (the l_0 estimators handle
        # float states with a tolerance, and truncating would zero
        # fractional entries).
        self._b_float = b.astype(float)
        self._b_exact = (
            b.astype(np.int64) if np.issubdtype(b.dtype, np.integer) else b
        )
        self.total_rows = sum(row_counts)
        self.refresh = refresh
        self.threshold = float(threshold)

        k = len(row_counts)
        if site_names is None:
            site_names = [f"site-{i}" for i in range(k)]
        if len(site_names) != k:
            raise ValueError(f"got {len(site_names)} site names for {k} row counts")
        if self.robust is not None:
            self.robust.check_sites(k)
        if self.quorum is not None:
            self.quorum.required(k)  # raises when n exceeds the site count
        #: Optional aggregation-tree overlay over this session's sites.
        #: Delta uploads then hop leaf -> aggregator -> ... -> root, with
        #: aggregators forwarding ONE partially merged bundle upstream, so
        #: the root's wire ingress is fan-out-many payloads instead of k.
        #: Live summaries and one-shot queries stay bit-identical to the
        #: flat session (exact integer sketch states merge associatively).
        self.tree = normalize_tree(tree, site_names)
        builder = transport if transport is not None else IN_PROCESS
        if self.tree is not None:
            self.network = builder.build_network(
                site_names, "coordinator", conditions, tree=self.tree
            )
        else:
            self.network = builder.build_network(site_names, "coordinator", conditions)
        # The scenario's static dropped-site declarations become the initial
        # dynamic partition set, so epoch boundaries and one-shot queries see
        # one consistent fault state (restore_site reconnects either kind).
        if conditions is not None and conditions.dropped:
            index_of = {name: i for i, name in enumerate(site_names)}
            dropped_names = set(conditions.dropped)
            if self.tree is not None:
                # Regional dropout: a dropped aggregator name declares every
                # leaf of its subtree dropped, as in the one-shot driver.
                for name in conditions.dropped:
                    if name in self.tree.children and name != self.tree.root:
                        dropped_names.discard(name)
                        dropped_names.update(self.tree.subtree_sites(name))
            unknown = dropped_names - set(index_of)
            if unknown:
                raise ValueError(
                    f"dropped sites {sorted(unknown)} match no site of this "
                    f"session (sites: {list(site_names)})"
                )
            self._dropped = {index_of[name] for name in dropped_names}

        # Shared monitoring randomness: independent of the query seed stream
        # (EstimatorBase) so streaming never shifts one-shot transcripts.
        if seed is None:
            monitor_rng = np.random.default_rng()
        else:
            monitor_rng = np.random.default_rng(
                np.random.SeedSequence([0x515E_A000, seed])
            )
        if sketch_mode not in ("dense", "hash"):
            raise ValueError(
                f"sketch_mode must be 'dense' or 'hash', got {sketch_mode!r}"
            )
        self.sketch_mode = sketch_mode
        # FAMILIES fixes both the construction order (each constructor draws
        # from the shared monitor stream) and the delta-bundle framing.
        builders = {
            "ams": lambda: AmsSketch.for_accuracy(
                self.total_rows, monitor_epsilon, monitor_rng, mode=sketch_mode
            ),
            "l0": lambda: L0Sketch.for_accuracy(
                self.total_rows, monitor_epsilon, monitor_rng, mode=sketch_mode
            ),
            "sampler": lambda: L0Sampler(
                self.total_rows,
                monitor_rng,
                repetitions=sampler_repetitions,
                mode=sketch_mode,
            ),
            "countsketch": lambda: CountSketch(
                self.total_rows, hh_width, hh_depth, monitor_rng
            ),
        }
        self.templates: dict[str, MergeableSketch] = {
            name: builders[name]() for name in FAMILIES
        }
        self._live_rng = np.random.default_rng(monitor_rng.integers(0, 2**63 - 1))
        self.merged: dict[str, MergeableSketch] = {
            key: sketch.empty_copy() for key, sketch in self.templates.items()
        }
        # Robust mode keeps each site's cumulative shipped state alongside
        # the global merge, so live queries can re-aggregate through the
        # trimmed/median combiner at query time.
        self.site_merged: list[dict[str, MergeableSketch]] | None = (
            [
                {key: sketch.empty_copy() for key, sketch in self.templates.items()}
                for _ in range(len(row_counts))
            ]
            if self.robust is not None
            else None
        )

        offsets = np.concatenate(([0], np.cumsum(row_counts)[:-1]))
        self.sites = [
            _SiteStream(
                i, site_names[i], int(offsets[i]), row_counts[i], b.shape[0],
                self.templates,
            )
            for i in range(k)
        ]
        self.epoch = 0
        self.history: list[EpochReport] = []
        self._b_is_binary = is_binary_data(b)
        self._shards_binary_cache: bool | None = None
        self._closed = False
        self._resident: _ResidentSites | None = None
        if (
            self.runtime is not None
            and self.runtime.persistent
            and self.runtime.executor in ("threads", "processes")
        ):
            if self._faults is not None:
                # Resident workers serialize their own (honest) state; the
                # corruption injector intercepts the classic ship path only.
                raise ValueError(
                    "fault injection (NetworkConditions.faults) is not "
                    "supported in resident mode; use a non-persistent runtime"
                )
            self._resident = self._build_resident(self.runtime)

    def _build_resident(self, runtime: Runtime) -> _ResidentSites:
        """Move every site's streaming state into a resident worker.

        Each site gets shared-memory segments for its shard and the four
        pending sketch states; the sketch layouts are probed with one
        zero-valued update of an ``empty_copy`` (exactly the shape and
        dtype real ingestion produces, and no randomness is consumed).
        The coordinator keeps its own views for zero-copy merges; process
        workers receive picklable block descriptors, thread workers the
        views themselves.
        """
        m = self.b.shape[0]
        layouts: dict[str, tuple[tuple[int, ...], np.dtype]] = {}
        for key, template in self.templates.items():
            probe = template.empty_copy()
            probe.update_many(
                np.zeros(1, dtype=np.int64), np.zeros((1, m), dtype=np.int64)
            )
            state = probe.state_array()
            layouts[key] = (state.shape, state.dtype)
        arena = _shm.ShmArena()
        as_blocks = runtime.executor == "processes"
        untrack = runtime._uses_spawn
        views: list[dict[str, np.ndarray]] = []
        init_tasks: list[tuple] = []
        for site in self.sites:
            specs: dict[str, tuple[tuple[int, ...], Any]] = {
                "shard": ((site.num_rows, m), np.dtype(np.int64)),
                **layouts,
            }
            site_views: dict[str, np.ndarray] = {}
            refs: dict[str, Any] = {}
            for key, (shape, dtype) in specs.items():
                view, block = arena.allocate(shape, dtype)
                site_views[key] = view
                refs[key] = block if as_blocks else view
            views.append(site_views)
            init_tasks.append((refs, self.templates, site.row_offset, untrack))
            site.shard = site_views["shard"]
            site.pending = None
        try:
            pool = runtime.resident_pool(_resident_site_init, init_tasks)
        except BaseException:
            arena.close()
            raise
        # The runtime co-owns the arena until the session closes: an
        # abandoned session's segments are then released by Runtime.close()
        # (or its atexit hook) instead of dangling in /dev/shm.
        runtime.adopt_arena(arena)
        return _ResidentSites(pool=pool, arena=arena, views=views)

    def _drain_resident(self) -> None:
        """Barrier: wait until every outstanding worker submission applied."""
        if self._resident is None:
            return
        for slot in range(len(self.sites)):
            self._resident.pool.drain(slot)

    def close(self) -> None:
        """Close the session, keeping the accumulated data queryable.

        This is the open→closed transition of the session state machine
        (see :class:`SessionClosedError`), identical in every execution
        mode: afterwards the session still answers one-shot and live
        queries over what it accumulated, while :meth:`ingest`,
        :meth:`end_epoch`/:meth:`sync` and :meth:`drop_site`/
        :meth:`restore_site` raise.  Idempotent.

        Pending (un-shipped) deltas — including a dropped site's queued
        backlog and any straggler uploads still in flight (see
        :meth:`collect_late`) — are *discarded*, never merged: a closed
        session's live summaries reflect exactly what arrived before the
        close.  In
        resident mode the outstanding ingests are drained first (so the
        accumulated shards are complete), the shards are materialized back
        into coordinator memory, the site workers shut down, and the
        shared-memory segments are unlinked and detached from the owning
        runtime — close in either order (session first or runtime first)
        releases everything exactly once.
        """
        if self._closed:
            return
        self._closed = True
        self._late_queue.clear()
        resident = self._resident
        if resident is None:
            for site in self.sites:
                site.clear_pending()
            return
        self._resident = None
        try:
            if not resident.pool.closed:
                for slot in range(len(self.sites)):
                    resident.pool.drain(slot)
        finally:
            arena_live = not resident.arena.closed
            for site, site_views in zip(self.sites, resident.views):
                if arena_live:
                    site.shard = np.array(site_views["shard"])
                else:
                    # The runtime closed first: the segments are unlinked
                    # and the views unmapped, so dereferencing them would
                    # be a use-after-free.  The accumulated shards died
                    # with the runtime's shared memory — a late close must
                    # release cleanly, not crash.
                    site.shard = np.zeros(
                        site_views["shard"].shape, site_views["shard"].dtype
                    )
                site.clear_pending()
            if self.runtime is not None:
                # Detach from the runtime's tracking lists so a long-lived
                # shared runtime doesn't accumulate dead pools/arenas across
                # thousands of session lifecycles.
                self.runtime.discard_resident_pool(resident.pool)
                self.runtime.release_arena(resident.arena)
            else:  # pragma: no cover - resident mode implies a runtime
                resident.pool.close()
            resident.arena.close()

    def __enter__(self) -> "StreamingSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------- construct
    @property
    def num_sites(self) -> int:
        return len(self.sites)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (mutations now raise)."""
        return self._closed

    def _check_open(self, operation: str) -> None:
        if self._closed:
            raise SessionClosedError(
                f"cannot {operation} on a closed streaming session "
                f"(the accumulated data remains queryable)"
            )

    @property
    def is_binary(self) -> bool:
        """Whether the *current* accumulated data is 0/1 (drives dispatch).

        Recomputed from the shards at most once per ingest (turnstile
        deletions can restore binarity, so the flag cannot be maintained
        falsified-once); back-to-back queries reuse the cache.
        """
        if not self._b_is_binary:
            return False
        if self._shards_binary_cache is None:
            self._drain_resident()
            self._shards_binary_cache = is_binary_data(
                *(site.shard for site in self.sites)
            )
        return self._shards_binary_cache

    def shards(self) -> list[np.ndarray]:
        """The accumulated per-site shards of ``A`` (global row order).

        In resident mode these are live shared-memory views of the worker
        state; the call drains outstanding ingests first so readers always
        see every update applied.
        """
        self._drain_resident()
        return [site.shard for site in self.sites]

    # ---------------------------------------------------------------- faults
    def drop_site(self, site: int) -> None:
        """Declare a site partitioned from the coordinator.

        While dropped the site keeps ingesting locally (its pending deltas
        queue up) but cannot upload at epoch boundaries; what happens then
        is the session's ``dropout`` policy.  Live estimates go stale by
        exactly the un-shipped drift — and recover fully once the site is
        restored and ships its backlog, because deltas are linear.
        """
        self._check_open("drop a site")
        if not 0 <= site < len(self.sites):
            raise ValueError(f"site index {site} out of range [0, {len(self.sites)})")
        self._dropped.add(site)

    def restore_site(self, site: int) -> None:
        """Reconnect a dropped site; its backlog ships on the next boundary.

        Raises :class:`SessionClosedError` after :meth:`close` — a dropped
        site's queued deltas are discarded by the close, so "restoring" it
        could never ship them and would only misreport connectivity.
        """
        self._check_open("restore a site")
        self._dropped.discard(site)

    @property
    def dropped_sites(self) -> list[str]:
        """Names of the currently dropped sites."""
        return [self.sites[i].name for i in sorted(self._dropped)]

    @property
    def contributing_sites(self) -> list[str]:
        """Names of the sites currently connected to the coordinator."""
        return [
            site.name for i, site in enumerate(self.sites) if i not in self._dropped
        ]

    # ---------------------------------------------------------------- ingest
    def ingest(self, site: int, rows: Any, deltas: Any) -> None:
        """Apply a batched turnstile update at one site.

        ``rows`` are *global* row indices inside the site's range and
        ``deltas`` is an integer matrix of shape ``(len(rows), m)`` added to
        those rows of ``A`` (negative entries are deletions).  Integer
        deltas keep every sketch state exact — provided the *accumulated*
        bucket magnitudes also stay within the float64-exact ``2**53`` range
        — which is what makes streamed and one-shot summaries bit-identical.
        """
        self._check_open("ingest")
        if not 0 <= site < len(self.sites):
            raise ValueError(f"site index {site} out of range [0, {len(self.sites)})")
        target = self.sites[site]
        rows = np.asarray(rows, dtype=np.int64).reshape(-1)
        deltas = np.asarray(deltas)
        # Every delta — float *or* integer dtype — must be an integer within
        # the float64-exact range +-2**53: the AMS and CountSketch monitor
        # states are float64 sums, so a larger magnitude would round there
        # and break the streamed==one-shot bit-identity.  Out-of-range or
        # fractional values are rejected, never truncated.  (Same invariant
        # as the wire codec's float->int downcast.)
        if not np.issubdtype(deltas.dtype, np.integer):
            if not wire.is_exact_integer_valued(deltas):
                raise ValueError(
                    "turnstile deltas must be integer-valued within the "
                    "float64-exact range 2**53"
                )
        elif deltas.size and (
            int(deltas.min()) < -(2**53) or int(deltas.max()) > 2**53
        ):
            raise ValueError(
                "turnstile deltas must be integer-valued within the "
                "float64-exact range 2**53"
            )
        deltas = deltas.astype(np.int64)
        if deltas.ndim != 2 or deltas.shape != (rows.shape[0], self.b.shape[0]):
            raise ValueError(
                f"deltas must have shape ({rows.shape[0]}, {self.b.shape[0]}), "
                f"got {deltas.shape}"
            )
        low, high = target.row_offset, target.row_offset + target.num_rows
        if rows.size and (rows.min() < low or rows.max() >= high):
            raise ValueError(
                f"rows must lie in {target.name}'s range [{low}, {high})"
            )
        if rows.size:
            if self._resident is not None:
                # The sketch/shard work happens in the site's resident
                # worker, asynchronously (the next drain point is the
                # barrier); the shipping counters stay here so the refresh
                # policy never needs a worker round-trip.  ``rows`` is
                # copied because a thread worker reads it in place and the
                # caller may reuse its buffer (``deltas`` is already a
                # fresh ``astype`` copy).
                if self._resident.pool.pending(site) >= _MAX_INFLIGHT:
                    self._resident.pool.drain(site)
                self._resident.pool.submit(site, _w_ingest, rows.copy(), deltas)
                target.pending_updates += rows.shape[0]
                target.pending_mass += float(np.abs(deltas).sum())
            else:
                target.ingest(rows, deltas)
            self._shards_binary_cache = None

    # ---------------------------------------------------------------- epochs
    def end_epoch(self, *, force: bool = False) -> EpochReport:
        """Close the current epoch, shipping deltas per the refresh policy.

        With ``force=True`` every pending delta is shipped regardless of the
        policy (a *sync*): afterwards the coordinator's merged summaries
        equal a one-shot sketching of the full accumulated data — provided
        no site is dropped; dropped sites cannot upload even on a sync (the
        ``dropout`` policy decides whether that raises or merely queues),
        and the identity is restored by the first sync after every site is
        back.

        Delta serialization runs *off the critical path*: it is dispatched
        asynchronously through the session's runtime (or to the resident
        site workers) and joined only after the coordinator has merged
        every shipping delta — straight from the pending sketch states, or
        in resident mode from shared-memory views of the worker state,
        with no decode step in either case.  Merges and sends stay serial
        in site order, so the shipped bytes and the merged summaries are
        executor-invariant, byte for byte.
        """
        self._check_open("close an epoch")
        # Decide (and possibly fail) before any state mutates, so a raised
        # boundary leaves the epoch counter and history untouched.
        decisions: list[bool] = []
        for index, site in enumerate(self.sites):
            wants_to_ship = site.should_ship(self.refresh, self.threshold, force=force)
            if index in self._dropped:
                if wants_to_ship and self.dropout == "fail":
                    raise SiteDroppedError(
                        [site.name],
                        f"dropped site {site.name!r} has pending deltas at the "
                        f"epoch boundary (dropout policy 'fail')",
                        policy=self.dropout,
                        surviving=len(self.sites) - len(self._dropped),
                    )
                wants_to_ship = False
            decisions.append(wants_to_ship)

        self.epoch += 1
        report = EpochReport(epoch=self.epoch)
        # Straggler uploads from earlier boundaries arrive now: fold them in
        # before this epoch's own ships (arrival order, then site order).
        self._fold_late(report)
        shipping: list[_SiteStream] = []
        for index, (site, ships) in enumerate(zip(self.sites, decisions)):
            if index in self._dropped:
                report.dropped.append(site.name)
            report.shipped[site.name] = ships
            if ships:
                shipping.append(site)

        # Stragglers: shipping sites whose upload misses the per-site
        # deadline under the conditions' latencies.  Their payloads are
        # built and their pending state reset exactly like an on-time ship
        # — only the merge and the meter wait for the arrival.
        deadline = self.deadline
        late_now: set[str] = set()
        if deadline is not None and self.conditions is not None:
            late_now = {
                site.name
                for site in shipping
                if self._upload_latency(site.name) > deadline
            }
        if self.quorum is not None:
            on_time = len(self.sites) - len(self._dropped) - len(late_now)
            report.quorum_met = on_time >= self.quorum.required(len(self.sites))

        payload_of: dict[str, bytes] = {}
        if shipping and self._resident is not None:
            # Resident flow: drain the in-flight ingests, then let every
            # shipping worker encode its payload while the coordinator
            # merges the identical state zero-copy out of the shm views
            # (both sides only read).  The per-slot FIFO guarantees the
            # reset runs strictly after the serialization.
            pool = self._resident.pool
            self._drain_resident()
            for site in shipping:
                pool.submit(site.index, _w_serialize)
            for site in shipping:
                if site.name not in late_now:
                    self._merge_site_views(site.index)
            for site in shipping:
                payload_of[site.name] = pool.result(site.index)
            for site in shipping:
                pool.submit(site.index, _w_reset)
        elif shipping:
            runtime = self.runtime if self.runtime is not None else SERIAL_RUNTIME
            # A FaultPlan corrupts the named sites' *uploads* — the state
            # that is serialized and the state that is merged, consistently
            # — while the sites' local shards stay honest.
            uploads: dict[str, dict[str, MergeableSketch]] = {}
            for site in shipping:
                if (
                    self._faults is not None
                    and site.name in self._faults.corrupt_sites
                ):
                    uploads[site.name] = self._corrupt_pending(site)
                else:
                    uploads[site.name] = site.pending
            join = runtime.map_async(
                serialize_deltas, [(uploads[site.name],) for site in shipping]
            )
            # The pending sketches *are* the deltas the wire would carry
            # (the codec round-trips states exactly), so merge them
            # directly while the encoders run; ``mark_shipped`` resets
            # them only after the join, below.
            for site in shipping:
                if site.name not in late_now:
                    self._merge_delta(site.index, uploads[site.name])
            payload_of = {
                site.name: payload for site, payload in zip(shipping, join())
            }
        on_time: list[tuple[_SiteStream, bytes]] = []
        for site in self.sites:
            payload = payload_of.get(site.name)
            if payload is None:
                report.upload_bytes.setdefault(site.name, 0)
                continue
            site.mark_shipped()
            if site.name in late_now:
                # In flight: metered (and merged) on arrival.
                self._late_queue.append((site.name, payload))
                report.late.append(site.name)
                report.upload_bytes.setdefault(site.name, 0)
                continue
            on_time.append((site, payload))
        # Sends run only after *every* shipped site's pending state is
        # reset: the deltas are already merged above, so a send that fails
        # partway (a real transport timing out mid-boundary) must not leave
        # the remaining sites' pending un-reset — the next boundary would
        # re-ship and double-merge them.  Send order stays site order, so
        # transcripts are unchanged.
        tree_net = self.network if isinstance(self.network, TreeNetwork) else None
        for site, payload in on_time:
            if tree_net is not None:
                # First hop of the tree route: leaf -> its parent.  The
                # aggregator relays (one merged bundle per interior edge)
                # are recorded right after the leaf loop, bottom-up.
                tree_net.upstream_hop(
                    site.name,
                    payload,
                    label=DELTA_LABEL,
                    bits=wire.payload_bits(payload),
                )
            else:
                self.network.send(
                    site.name,
                    self.network.coordinator_name,
                    payload,
                    label=DELTA_LABEL,
                    bits=wire.payload_bits(payload),
                )
            report.upload_bytes[site.name] = (
                report.upload_bytes.get(site.name, 0) + len(payload)
            )
        if tree_net is not None and on_time:
            self._ship_aggregated(tree_net, on_time)
        report.total_bytes = sum(report.upload_bytes.values())
        report.cumulative_bytes = (self.history[-1].cumulative_bytes if self.history else 0)
        report.cumulative_bytes += report.total_bytes
        self.history.append(report)
        return report

    def _upload_latency(self, site_name: str) -> float:
        """The latency pricing one site's upload (tree-aware under regions)."""
        if self.tree is not None:
            return self.conditions.edge_link(
                site_name, tuple(self.tree.ancestors(site_name))
            ).latency
        return self.conditions.link(site_name).latency

    def _ship_aggregated(
        self,
        network: TreeNetwork,
        on_time: "list[tuple[_SiteStream, bytes]]",
    ) -> None:
        """Relay partially merged delta bundles up the aggregation tree.

        Bottom-up, every aggregator with at least one on-time shipping
        descendant merges its children's bundles — decoded from the very
        wire payloads the leaves shipped, and the codec round-trips the
        exact integer states, so the merge is associative bit for bit —
        and forwards ONE re-encoded bundle to its parent.  The root's
        wire ingress is therefore fan-out-many payloads instead of k.
        The coordinator's summaries were already merged from the per-site
        bundles (preserving the robust per-site slots); this loop records
        the metering truth of every interior edge.
        """
        tree = network.tree
        bundles = {
            site.name: deserialize_deltas(self.templates, payload)
            for site, payload in on_time
        }
        # Deepest aggregators first (stable on tree.aggregators' top-down
        # order), so a parent sees its child aggregators' merged bundles.
        for agg in sorted(tree.aggregators, key=tree.node_depth, reverse=True):
            parts = [
                bundles.pop(child)
                for child in tree.children[agg]
                if child in bundles
            ]
            if not parts:
                continue
            merged = parts[0]
            if len(parts) > 1:
                merged = {
                    key: self.templates[key].empty_copy() for key in FAMILIES
                }
                for part in parts:
                    for key in FAMILIES:
                        merged[key].merge(part[key])
            payload = serialize_deltas(merged)
            network.upstream_hop(
                agg, payload, label=DELTA_LABEL, bits=wire.payload_bits(payload)
            )
            bundles[agg] = merged

    def _merge_site_views(self, site_index: int) -> None:
        """Merge one shipping site's deltas straight from its shm views.

        Wraps each family's view in a stateless ``empty_copy`` (shares the
        template randomness, so the merge's identity fast path applies) and
        merges it — the views are only *read*: a first merge copies them
        into the coordinator state, later merges accumulate with ``+=``.
        Bit-identical to decoding the site's wire payload, because the
        codec round-trips state arrays exactly.
        """
        site_views = self._resident.views[site_index]
        for key in FAMILIES:
            delta = self.templates[key].empty_copy()
            delta.load_state_array(site_views[key])
            self.merged[key].merge(delta)
            if self.site_merged is not None:
                self.site_merged[site_index][key].merge(delta)

    def _merge_delta(
        self, site_index: int, delta: dict[str, MergeableSketch]
    ) -> None:
        """Fold one site's delta bundle into the coordinator's summaries
        (and, in robust mode, into that site's cumulative slot)."""
        for key in FAMILIES:
            self.merged[key].merge(delta[key])
            if self.site_merged is not None:
                self.site_merged[site_index][key].merge(delta[key])

    def _corrupt_pending(self, site: "_SiteStream") -> dict[str, MergeableSketch]:
        """One corrupt site's upload: its pending states through the plan.

        Keyed per (site, family, epoch) so the scenario replays exactly;
        the returned sketches are detached copies — the site's own pending
        state stays honest and resets normally.
        """
        corrupted: dict[str, MergeableSketch] = {}
        for key in FAMILIES:
            sketch = self.templates[key].empty_copy()
            state = site.pending[key].state_array()
            if state is not None:
                state = np.asarray(
                    self._faults.corrupt(site.name, state, self.epoch, channel=key),
                    dtype=float,
                )
            sketch.load_state_array(state)
            corrupted[key] = sketch
        return corrupted

    def _fold_late(self, report: "EpochReport | None") -> list[tuple[str, int]]:
        """Merge every queued straggler upload into the live summaries.

        Decodes the queued wire payloads (the codec round-trips states
        exactly, so a late fold is bit-identical to an on-time merge),
        meters the arrival under ``stream/late-delta`` and credits the
        bytes to ``report`` when one is given.
        """
        folded: list[tuple[str, int]] = []
        if not self._late_queue:
            return folded
        index_of = {site.name: site.index for site in self.sites}
        tree_net = self.network if isinstance(self.network, TreeNetwork) else None
        for name, payload in self._late_queue:
            deltas = deserialize_deltas(self.templates, payload)
            self._merge_delta(index_of[name], deltas)
            bits = wire.payload_bits(payload)
            if tree_net is not None:
                # A straggler's bundle has no merge partner at any level:
                # its bytes traverse every hop of its path unchanged.
                for child in reversed(tree_net.tree.path_edges(name)):
                    tree_net.upstream_hop(
                        child, payload, label=LATE_DELTA_LABEL, bits=bits
                    )
            else:
                self.network.send(
                    name,
                    self.network.coordinator_name,
                    payload,
                    label=LATE_DELTA_LABEL,
                    bits=bits,
                )
            if report is not None:
                report.late_merged.append(name)
                report.upload_bytes[name] = (
                    report.upload_bytes.get(name, 0) + len(payload)
                )
            folded.append((name, len(payload)))
        self._late_queue.clear()
        return folded

    def collect_late(self) -> dict[str, int]:
        """Fold queued straggler uploads into the live summaries *now*.

        The automatic fold happens at the next epoch boundary; this is the
        explicit arrival point for callers that need the stragglers' state
        without closing another epoch (e.g. before a final live query).
        Returns ``{site name: folded payload bytes}``; empty when nothing
        was queued.
        """
        self._check_open("collect late deltas")
        counts: dict[str, int] = {}
        for name, nbytes in self._fold_late(None):
            counts[name] = counts.get(name, 0) + nbytes
        return counts

    @property
    def late_pending(self) -> list[str]:
        """Names of sites with an upload still in flight (queued late)."""
        return sorted({name for name, _ in self._late_queue})

    @property
    def deadline(self) -> float | None:
        """The active per-site upload deadline (quorum's, else conditions')."""
        if self.quorum is not None and self.quorum.deadline is not None:
            return self.quorum.deadline
        return self.conditions.deadline if self.conditions is not None else None

    def sync(self) -> EpochReport:
        """Force-ship every pending delta (threshold policy included)."""
        return self.end_epoch(force=True)

    @property
    def total_upload_bytes(self) -> int:
        """Bytes shipped upstream so far (the network meters 8 bits each)."""
        return self.network.total_bits // 8

    # ----------------------------------------------------------- live queries
    def _robust_sketch(self, key: str) -> MergeableSketch | None:
        """The robust combination of the per-site cumulative summaries.

        Stacks every site's accumulated ``key`` state (zeros for sites that
        never shipped — an honest empty contribution) and combines them
        with the session's :class:`~repro.engine.robust.RobustPolicy`
        instead of the plain sum, so up to ``f`` Byzantine sites cannot
        drag the estimate arbitrarily.  Returns ``None`` while nothing has
        shipped at all.
        """
        if self.robust is None or self.site_merged is None:
            raise ValueError(
                "robust live queries need StreamingSession(robust=...); "
                "this session was built without a robust policy"
            )
        reference = self.merged[key].state_array()
        if reference is None:
            return None
        states = []
        for per_site in self.site_merged:
            state = per_site[key].state_array()
            states.append(np.zeros_like(reference) if state is None else state)
        combined = robust_merge_states(states, self.robust)
        sketch = self.templates[key].empty_copy()
        sketch.load_state_array(np.asarray(combined))
        return sketch

    def live_lp_norm(self, p: float = 2.0, *, robust: bool = False) -> float:
        """Live ``||C||_p^p`` from the shipped summaries (``p`` in {0, 2}).

        ``p = 2`` reads the merged AMS summary, ``p = 0`` the merged ``l_0``
        summary; both reflect exactly the deltas shipped so far (threshold
        refresh trades staleness for bytes).  With ``robust=True`` (needs a
        session ``robust=`` policy) the per-site cumulative summaries are
        combined by the robust estimator instead of the plain sum.
        """
        if p == 0.0:
            return self.live_l0(robust=robust)
        if p != 2.0:
            raise ValueError(
                f"live monitoring supports p in {{0, 2}}, got {p}; run the "
                f"one-shot lp_norm({p}, ...) query for other norms"
            )
        source = self._robust_sketch("ams") if robust else self.merged["ams"]
        ams: AmsSketch = source  # type: ignore[assignment]
        if ams is None or ams.state is None:
            return 0.0
        sketched_c = ams.state @ self._b_float
        return float(ams.estimate_f2_columns(sketched_c).sum())

    def live_l0(self, *, robust: bool = False) -> float:
        """Live ``||C||_0`` (support size of the product) from shipped deltas.

        The robust combiner applies to *additive* AMS-backed estimates
        (see :meth:`live_lp_norm`); the ``l_0`` sketch's exact decode does
        not survive a trimmed/median recombination of states, so
        ``robust=True`` raises rather than silently decoding garbage.
        """
        if robust:
            raise ValueError(
                "robust recombination supports the additive AMS-backed "
                "estimates (live_lp_norm with p=2), not the exact l0 decode"
            )
        l0: L0Sketch = self.merged["l0"]  # type: ignore[assignment]
        if l0.state is None:
            return 0.0
        sketched_c = l0.state @ self._b_exact
        column_l0 = np.maximum(l0.estimate_rows_pp(sketched_c.T), 0.0)
        return float(column_l0.sum())

    def live_l0_sample(self) -> SampleOutput:
        """A (near-)uniform sample from the support of ``C``, live."""
        l0: L0Sketch = self.merged["l0"]  # type: ignore[assignment]
        sampler: L0Sampler = self.merged["sampler"]  # type: ignore[assignment]
        if l0.state is None or sampler.state is None:
            return SampleOutput(row=None, col=None)
        b_int = self._b_exact
        output, _ = finish_l0_sample(
            self.templates["l0"],
            self.templates["sampler"],
            l0.state @ b_int,
            sampler.state @ b_int,
            self._live_rng,
        )
        return output

    def live_heavy_hitters(self, phi: float) -> HeavyHitterOutput:
        """Live ``l_2``-``phi`` heavy entries of ``C`` from shipped deltas.

        Point estimates come from the vector-valued CountSketch turned into
        per-column CountSketches of ``C`` (one multiplication by ``B``); the
        threshold is ``phi`` times the live AMS estimate of ``||C||_2^2``.
        """
        if not 0 < phi <= 1:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        cs: CountSketch = self.merged["countsketch"]  # type: ignore[assignment]
        if cs.table.ndim != 3:
            return HeavyHitterOutput()
        total_f2 = self.live_lp_norm(2.0)
        if total_f2 <= 0:
            return HeavyHitterOutput()
        c_space = cs.empty_copy()
        c_space.load_state_array(cs.table @ self._b_float)
        estimates = c_space.query_rows()
        reported = {
            (int(i), int(j)): float(estimates[i, j])
            for i, j in zip(*np.nonzero(estimates**2 >= phi * total_f2))
        }
        return HeavyHitterOutput(pairs=set(reported), estimates=reported)

    # ------------------------------------------------------- one-shot queries
    def _run(self, protocol: StarProtocol) -> ProtocolResult:
        """Run a one-shot engine protocol over the accumulated shards.

        Same dispatch and seed discipline as ``ClusterEstimator``: the n-th
        query of a session matches the n-th query of a one-shot cluster
        built from the final shards, bit for bit.  Sites currently dropped
        are declared to the protocol driver (the one-shot protocols index
        sites ``site-0..k-1``, matching the session's default naming), so
        the runtime's dropout policy governs whether the query fails or
        excludes their unreachable shards.
        """
        conditions = self.conditions
        tree = self.tree
        if tree is not None:
            # The one-shot drivers name sites positionally; carry the
            # session's tree shape over to those names.
            name_of = {site.name: f"site-{i}" for i, site in enumerate(self.sites)}
            if any(old != new for old, new in name_of.items()):
                tree = tree.rename_sites(name_of)
        scenario_active = bool(self._dropped) or (
            conditions is not None and (conditions.dropped or conditions.overrides)
        )
        if scenario_active:
            base = conditions if conditions is not None else NetworkConditions()
            # The session's dynamic partition set (which absorbed the static
            # conditions.dropped at construction and shrinks on restore_site)
            # is the single source of truth for dropout; translate it — and
            # any per-link overrides keyed by custom session names — to the
            # one-shot drivers' positional site-i naming, so a straggler
            # model keeps pricing the same link.
            name_of = {site.name: f"site-{i}" for i, site in enumerate(self.sites)}
            conditions = NetworkConditions(
                base.default,
                overrides={
                    name_of.get(name, name): model
                    for name, model in base.overrides.items()
                },
                dropped={f"site-{i}" for i in sorted(self._dropped)},
                jitter_seed=base.jitter_seed,
                deadline=base.deadline,
                faults=base.faults,
                regions=base.regions,
            )
        return protocol.run(
            self.shards(),
            self.b,
            runtime=self.runtime,
            conditions=conditions,
            transport=self.transport,
            tree=tree,
        )
