"""Remarks 2 and 3, k sites: exact ``||A B||_1`` and ``l_1``-sampling, one round.

For entrywise non-negative matrices (in particular binary matrices /
database joins) the natural-join size ``||A B||_1`` factorises over the
shared attribute:

    ``||A B||_1 = sum_j ||A_{*,j}||_1 * ||B_{j,*}||_1``

Column sums are mergeable (they add over row-shards), so every site sends
its shard's ``n`` column sums and the coordinator sums them before taking
the inner product with ``B``'s row sums (Remark 2).  Sampling an entry of
``C`` proportionally to its value reduces to sampling the shared item ``j``
proportionally to ``||A_{*,j}||_1 ||B_{j,*}||_1``, then a random "witness"
on each side (Remark 3); each site pre-draws one witness per item from its
own shard, and the coordinator picks the owning site proportionally to the
per-site column masses.  Both protocols use ``O(n log n)`` bits per site
and one round.
"""

from __future__ import annotations

import numpy as np

from repro.comm import bitcost
from repro.core.result import SampleOutput
from repro.engine.base import StarProtocol
from repro.engine.lp_norm import check_inner_dims, total_rows_of
from repro.engine.robust import RobustPolicy, robust_total
from repro.engine.topology import Coordinator, Site

__all__ = ["StarExactL1Protocol", "StarL1SamplingProtocol", "shard_column_sums"]


def _check_nonnegative(matrix: np.ndarray, who: str) -> np.ndarray:
    matrix = np.asarray(matrix)
    if np.any(matrix < 0):
        raise ValueError(
            f"{who}'s matrix has negative entries; Remark 2/3 require "
            "entrywise non-negative matrices (e.g. binary join matrices)"
        )
    return matrix


def shard_column_sums(shard: np.ndarray) -> np.ndarray:
    """One shard's per-item column sums (Remark 2's mergeable summary).

    Module-level so the runtime can fan it out across sites; the ``l_inf``
    and heavy-hitter protocols reuse it for their own Remark-2 phases.
    """
    return np.asarray(shard).sum(axis=0)


def _l1_witness_task(
    rng: np.random.Generator, shard: np.ndarray, row_offset: int
) -> tuple[tuple[np.ndarray, np.ndarray], np.random.Generator]:
    """One site's Remark-3 work: column sums + one witness row per item.

    Witnesses are drawn column by column from the site's private ``rng``
    (returned advanced, per the runtime's ``map_sites`` contract), exactly
    as the serial protocol always did.
    """
    n_inner = shard.shape[1]
    column_sums = shard.sum(axis=0).astype(float)
    witnesses = np.full(n_inner, -1, dtype=np.int64)
    for j in range(n_inner):
        if column_sums[j] > 0:
            probabilities = shard[:, j] / column_sums[j]
            witnesses[j] = row_offset + rng.choice(shard.shape[0], p=probabilities)
    return (column_sums, witnesses), rng


class StarExactL1Protocol(StarProtocol):
    """Remark 2: exact ``||A B||_1`` with ``O(n log n)`` bits, one round.

    ``robust=`` (a :class:`repro.engine.robust.RobustPolicy` or a bare
    ``f``) replaces the entrywise sum of per-site column sums with the
    coordinatewise robust total, tolerating up to f corrupt uploads; the
    conditions' :class:`~repro.engine.robust.FaultPlan` (if any) corrupts
    the named sites' uploads before the merge.
    """

    name = "l1-exact-one-round"
    renormalizes_on_dropout = True

    def __init__(
        self,
        *,
        seed: int | None = None,
        robust: "RobustPolicy | int | None" = None,
    ) -> None:
        super().__init__(seed=seed)
        self.robust = RobustPolicy.coerce(robust)

    def _execute(self, coordinator: Coordinator, sites: list[Site]):
        b = _check_nonnegative(coordinator.data, "the coordinator")
        check_inner_dims(sites, b)
        shards = [_check_nonnegative(site.data, site.name) for site in sites]
        faults = self.conditions.faults if self.conditions is not None else None

        # Fan-out: per-shard column sums; serial: sends + merge in site order.
        site_column_sums = self.runtime.map(
            shard_column_sums, [(shard,) for shard in shards]
        )
        merged = np.zeros(b.shape[0], dtype=float)
        total_bits = 0
        site_uploads: list[np.ndarray] = []
        for site, column_sums in zip(sites, site_column_sums):
            bits = column_sums.shape[0] * bitcost.bits_for_int(int(max(column_sums.max(), 1)))
            site.send(column_sums, label="column-sums", bits=bits)
            upload = column_sums.astype(float)
            if faults is not None:
                upload = np.asarray(faults.corrupt(site.name, upload), dtype=float)
            merged += upload
            site_uploads.append(upload)
            total_bits += bits

        details: dict = {"column_sums_bits": total_bits}
        if self.robust is not None:
            merged = np.asarray(robust_total(site_uploads, self.robust), dtype=float)
            details["robust"] = {
                "f": self.robust.f,
                "strategy": self.robust.strategy,
            }
        if faults is not None:
            present = {site.name for site in sites}
            details["faults"] = {
                name: kind
                for name, kind in faults.describe().items()
                if name in present
            }

        row_sums = b.sum(axis=1)
        value = float(np.dot(merged, row_sums.astype(float)))
        return value, details


class StarL1SamplingProtocol(StarProtocol):
    """Remark 3: ``l_1``-sampling of an entry of ``A B`` in one round.

    Returns a :class:`repro.core.result.SampleOutput` whose ``(row, col)`` is
    distributed proportionally to ``C_{row, col}`` (for non-negative inputs).
    """

    name = "l1-sampling-one-round"

    def _execute(self, coordinator: Coordinator, sites: list[Site]):
        b = _check_nonnegative(coordinator.data, "the coordinator")
        check_inner_dims(sites, b)
        total_rows = total_rows_of(sites)
        n_inner = b.shape[0]

        # Round 1 (the only round): every site ships its shard's column sums
        # plus one witness row per item, sampled proportionally to the
        # column values within the shard (global row numbering).  Witness
        # drawing fans out (private coins per site); sends stay serial.
        shards = [_check_nonnegative(site.data, site.name) for site in sites]
        outcomes = self.runtime.map_sites(
            _l1_witness_task,
            sites,
            [(shard, site.row_offset) for site, shard in zip(sites, shards)],
        )
        site_column_sums = []
        site_witnesses = []
        for site, (column_sums, witnesses) in zip(sites, outcomes):
            bits = n_inner * (
                bitcost.bits_for_int(int(max(column_sums.max(), 1)))
                + bitcost.bits_for_index(max(total_rows, 1))
            )
            site.send(
                {"column_sums": column_sums, "witnesses": witnesses},
                label="column-sums+witnesses",
                bits=bits,
            )
            site_column_sums.append(column_sums)
            site_witnesses.append(witnesses)

        # Coordinator: item j ~ ||A_{*,j}||_1 ||B_{j,*}||_1, then a column
        # witness from B and a row witness from the owning site.
        merged = np.sum(site_column_sums, axis=0)
        row_sums = b.sum(axis=1).astype(float)
        masses = merged * row_sums
        total = masses.sum()
        if total <= 0:
            return SampleOutput(row=None, col=None), {"total_mass": 0.0}
        j = int(coordinator.rng.choice(n_inner, p=masses / total))
        col_probabilities = b[j, :] / row_sums[j]
        col = int(coordinator.rng.choice(b.shape[1], p=col_probabilities))
        if len(sites) == 1:
            owner = 0
        else:
            weights = np.array([sums[j] for sums in site_column_sums])
            owner = int(coordinator.rng.choice(len(sites), p=weights / weights.sum()))
        row = int(site_witnesses[owner][j])
        return SampleOutput(row=row, col=col), {"total_mass": float(total), "item": j}
