"""The engine's message-passing runtime: pluggable per-site executors.

Every engine protocol is now written as an alternation of two phases:

1. a **fan-out phase** — per-site local computation (sketch ``update_many``
   over a shard, group sampling, exchange-list construction, ...) with *no*
   network access, expressed as a picklable module-level task function and
   executed through :meth:`Runtime.map`;
2. a **serial phase** — the coordinator's side: sends in fixed site order,
   entrywise merges, thresholding, the final estimate.

The runtime only parallelizes phase 1, so the transcript — the order of
messages on the network, the bits charged per message, the round counter —
is produced by exactly the same serial code regardless of the executor.

Serial-equivalence guarantee
----------------------------
``Runtime("serial")`` (the default) runs every task inline, in site order,
on the caller's thread: byte for byte the pre-runtime control flow, which
is why the pinned-transcript suites (``tests/test_engine_equivalence.py``,
``tests/engine/test_determinism.py``, the golden-state and the streaming
equivalence tests) pass unmodified.  The concurrent executors preserve
bit-identical *results* too, because the engine's randomness discipline
makes per-site work independent:

* each site draws only from its **private** generator, so concurrent sites
  never contend for a stream, and results are collected **in site order**
  regardless of completion order;
* task functions that consume randomness take the generator as an argument
  and return it alongside their result; :meth:`Runtime.map_sites` restores
  the returned generator onto the site, so a later phase continues from the
  advanced state even when the draw happened in another *process* (in the
  serial and thread executors the returned object is the site's own
  generator and the restore is a no-op);
* floating-point accumulation across sites happens in the serial phase, in
  site order, so sums associate identically under every executor.

Together these give the contract pinned by ``tests/engine/test_runtime.py``:
all three executors produce identical protocol outputs and identical
bit/round/per-link meters, for every protocol family, at every k.

Executors
---------
``serial``
    Inline execution (default).  Zero overhead, zero dependencies.
``threads``
    A shared :class:`~concurrent.futures.ThreadPoolExecutor`.  NumPy
    releases the GIL inside the BLAS/ufunc kernels that dominate per-site
    work, so k-site runs overlap their heavy lifting on multicore hosts.
``processes``
    A shared :class:`~concurrent.futures.ProcessPoolExecutor` (fork start
    method where available).  True multi-core fan-out; task functions and
    their arguments must be picklable — all engine sketches and payloads
    are.  Task arguments are pickled per task, so phases that pass the
    coordinator's full matrix to every site pay IPC proportional to
    ``k * size(B)``; worth it only when per-site compute dominates (the
    honest trade-off is recorded per host in ``BENCH_runtime.json``).

Fault policies
--------------
The runtime also owns the **dropout policy** applied when the network
conditions declare sites dropped (:class:`repro.comm.conditions
.NetworkConditions.dropped`):

``"fail"``
    (default) Raise :class:`SiteDroppedError` — a one-shot protocol cannot
    answer without all shards.
``"exclude"``
    Run the protocol over the surviving sites only and report which sites
    contributed (``details["dropout"]``).  Protocol families whose output
    is an additive mass over row-shards (the mergeable-summary families:
    ``lp_norm`` / ``join_size``, ``natural_join_size``) are additionally
    **renormalized** by the inverse surviving row fraction, so the estimate
    still targets the full ``||A B||`` under a uniform-mass assumption.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, Sequence

__all__ = [
    "DROPOUT_POLICIES",
    "EXECUTORS",
    "Runtime",
    "SERIAL_RUNTIME",
    "SiteDroppedError",
]

#: Supported executors, in cost order.
EXECUTORS = ("serial", "threads", "processes")

#: Supported dropout policies.
DROPOUT_POLICIES = ("fail", "exclude")


class SiteDroppedError(RuntimeError):
    """Raised when dropped sites make a protocol unanswerable under policy."""

    def __init__(self, dropped: Sequence[str], message: str | None = None) -> None:
        self.dropped = sorted(dropped)
        super().__init__(
            message
            or f"sites {self.dropped} are dropped; rerun with "
            f"Runtime(dropout='exclude') to estimate from the survivors"
        )


def _default_workers() -> int:
    return max(os.cpu_count() or 1, 1)


class Runtime:
    """Executes the engine's per-site fan-out phases.

    Parameters
    ----------
    executor:
        ``"serial"`` (default), ``"threads"`` or ``"processes"``.
    max_workers:
        Pool width for the concurrent executors (default: CPU count).
    dropout:
        Policy applied to sites declared dropped by the network conditions:
        ``"fail"`` (default) or ``"exclude"`` (see the module docstring).

    A runtime is reusable across protocol runs and queries; its worker pool
    is created lazily on the first concurrent :meth:`map` and shared until
    :meth:`close` (also invoked by the context-manager exit and at
    interpreter shutdown).
    """

    def __init__(
        self,
        executor: str = "serial",
        *,
        max_workers: int | None = None,
        dropout: str = "fail",
    ) -> None:
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        if dropout not in DROPOUT_POLICIES:
            raise ValueError(f"dropout must be one of {DROPOUT_POLICIES}, got {dropout!r}")
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.executor = executor
        self.max_workers = max_workers
        self.dropout = dropout
        self._pool: Executor | None = None
        self._atexit_registered = False

    # ------------------------------------------------------------------ pool
    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            workers = self.max_workers or _default_workers()
            if self.executor == "threads":
                self._pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-site"
                )
            else:
                import multiprocessing

                try:
                    context = multiprocessing.get_context("fork")
                except ValueError:  # pragma: no cover - non-fork platforms
                    context = multiprocessing.get_context()
                self._pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
            if not self._atexit_registered:
                atexit.register(self.close)
                self._atexit_registered = True
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent; pool recreates on demand)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._atexit_registered:
            # Drop the interpreter-shutdown hook so closed runtimes are
            # garbage-collectable instead of accumulating in the atexit list.
            atexit.unregister(self.close)
            self._atexit_registered = False

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------- map
    def map(self, fn: Callable[..., Any], tasks: Sequence[tuple]) -> list[Any]:
        """Run ``fn(*task)`` for every task; results come back in task order.

        The serial executor (and any call with fewer than two tasks, where
        concurrency cannot help) runs inline on the caller's thread.  For
        the ``processes`` executor ``fn`` must be a module-level function
        and every task element picklable.
        """
        if self.executor == "serial" or len(tasks) < 2:
            return [fn(*task) for task in tasks]
        pool = self._ensure_pool()
        return list(pool.map(fn, *zip(*tasks)))

    def map_sites(
        self,
        fn: Callable[..., tuple[Any, Any]],
        sites: Sequence[Any],
        tasks: Sequence[tuple],
    ) -> list[Any]:
        """Fan ``fn(site.rng, *task)`` out over sites; restore advanced rngs.

        ``fn`` must return ``(result, rng)``.  Each site's private generator
        is passed as the first argument and *replaced* by the returned one,
        so draws made in a worker process are visible to later phases — the
        serial/threads executors return the site's own (mutated) generator
        and the replacement is a no-op.  Results are in site order.
        """
        outcomes = self.map(
            fn, [(site.rng,) + tuple(task) for site, task in zip(sites, tasks)]
        )
        results = []
        for site, (result, rng) in zip(sites, outcomes):
            site.rng = rng
            results.append(result)
        return results

    # ---------------------------------------------------------------- faults
    def partition_dropped(
        self, site_names: Sequence[str], dropped: Iterable[str]
    ) -> tuple[list[int], list[str]]:
        """Split site indices into (surviving, dropped-names) under policy.

        Returns the indices of surviving sites (in order) and the sorted
        names actually dropped.  Raises :class:`SiteDroppedError` when the
        policy is ``"fail"`` and any site is dropped, or when no site
        survives — and ``ValueError`` when a declared name matches no site
        (a typo'd fault declaration must not silently test nothing).
        """
        dropped = set(dropped)
        unknown = dropped - set(site_names)
        if unknown:
            raise ValueError(
                f"dropped sites {sorted(unknown)} match no site in this "
                f"topology (sites: {list(site_names)})"
            )
        if not dropped:
            return list(range(len(site_names))), []
        if self.dropout == "fail":
            raise SiteDroppedError(sorted(dropped))
        surviving = [i for i, name in enumerate(site_names) if name not in dropped]
        if not surviving:
            raise SiteDroppedError(
                sorted(dropped), "every site is dropped; nothing can be estimated"
            )
        return surviving, sorted(dropped)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Runtime({self.executor!r}, dropout={self.dropout!r})"


#: The shared default: serial execution, fail-on-dropout.  The serial
#: executor never allocates a pool, so one stateless instance backs every
#: protocol run and helper invoked without an explicit runtime.
SERIAL_RUNTIME = Runtime()
