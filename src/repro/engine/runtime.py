"""The engine's message-passing runtime: pluggable per-site executors.

Every engine protocol is now written as an alternation of two phases:

1. a **fan-out phase** — per-site local computation (sketch ``update_many``
   over a shard, group sampling, exchange-list construction, ...) with *no*
   network access, expressed as a picklable module-level task function and
   executed through :meth:`Runtime.map`;
2. a **serial phase** — the coordinator's side: sends in fixed site order,
   entrywise merges, thresholding, the final estimate.

The runtime only parallelizes phase 1, so the transcript — the order of
messages on the network, the bits charged per message, the round counter —
is produced by exactly the same serial code regardless of the executor.

Serial-equivalence guarantee
----------------------------
``Runtime("serial")`` (the default) runs every task inline, in site order,
on the caller's thread: byte for byte the pre-runtime control flow, which
is why the pinned-transcript suites (``tests/test_engine_equivalence.py``,
``tests/engine/test_determinism.py``, the golden-state and the streaming
equivalence tests) pass unmodified.  The concurrent executors preserve
bit-identical *results* too, because the engine's randomness discipline
makes per-site work independent:

* each site draws only from its **private** generator, so concurrent sites
  never contend for a stream, and results are collected **in site order**
  regardless of completion order;
* task functions that consume randomness take the generator as an argument
  and return it alongside their result; :meth:`Runtime.map_sites` restores
  the returned generator onto the site, so a later phase continues from the
  advanced state even when the draw happened in another *process* (in the
  serial and thread executors the returned object is the site's own
  generator and the restore is a no-op);
* floating-point accumulation across sites happens in the serial phase, in
  site order, so sums associate identically under every executor.

Together these give the contract pinned by ``tests/engine/test_runtime.py``:
all three executors produce identical protocol outputs and identical
bit/round/per-link meters, for every protocol family, at every k.

Executors
---------
``serial``
    Inline execution (default).  Zero overhead, zero dependencies.
``threads``
    A shared :class:`~concurrent.futures.ThreadPoolExecutor`.  NumPy
    releases the GIL inside the BLAS/ufunc kernels that dominate per-site
    work, so k-site runs overlap their heavy lifting on multicore hosts.
``processes``
    A shared :class:`~concurrent.futures.ProcessPoolExecutor` (fork start
    method where available).  True multi-core fan-out; task functions and
    their arguments must be picklable — all engine sketches and payloads
    are.  Large ndarray task arguments (shards, matrices) travel through
    ``multiprocessing.shared_memory`` segments that workers attach once
    and the runtime refreshes per dispatch, so the per-task pickle cost
    covers only the small residue; the honest trade-off per host is
    recorded in ``BENCH_runtime.json``.

Resident workers (``persistent=True``)
--------------------------------------
Pool workers are stateless: every task round-trips its inputs.  For
stateful consumers (the streaming runtime) that means re-pickling whole
site sketches each epoch.  ``Runtime(..., persistent=True)`` warms the
pool eagerly and unlocks :meth:`Runtime.resident_pool` — one dedicated
worker per site that *keeps* the site's sketch state (pinned into shared
memory via :mod:`repro.sketch.shm`) across epochs, so per-epoch traffic
is just update batches out and counters back, and the coordinator merges
summaries straight out of the workers' shm segments with zero
serialization.

Fault policies
--------------
The runtime also owns the **dropout policy** applied when the network
conditions declare sites dropped (:class:`repro.comm.conditions
.NetworkConditions.dropped`):

``"fail"``
    (default) Raise :class:`SiteDroppedError` — a one-shot protocol cannot
    answer without all shards.
``"exclude"``
    Run the protocol over the surviving sites only and report which sites
    contributed (``details["dropout"]``).  Protocol families whose output
    is an additive mass over row-shards (the mergeable-summary families:
    ``lp_norm`` / ``join_size``, ``natural_join_size``) are additionally
    **renormalized** by the inverse surviving row fraction, so the estimate
    still targets the full ``||A B||`` under a uniform-mass assumption.
"""

from __future__ import annotations

import atexit
import os
import traceback
from collections import deque
from dataclasses import dataclass
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.sketch import shm as _shm

__all__ = [
    "DROPOUT_POLICIES",
    "EXECUTORS",
    "QuorumPolicy",
    "ResidentPool",
    "Runtime",
    "SERIAL_RUNTIME",
    "SiteDroppedError",
    "WorkerCrashedError",
]

#: Supported executors, in cost order.
EXECUTORS = ("serial", "threads", "processes")

#: Supported dropout policies.
DROPOUT_POLICIES = ("fail", "exclude")


class SiteDroppedError(RuntimeError):
    """Raised when dropped sites make a protocol unanswerable under policy.

    Carries the failure as structured state — ``dropped`` (sorted names),
    ``policy`` (the active dropout policy, if known), ``surviving`` (how
    many sites remain) and ``reason`` (``"dropped"`` or ``"quorum"``) — so
    callers can degrade programmatically via :meth:`degradation_report`
    instead of parsing the message.
    """

    def __init__(
        self,
        dropped: Sequence[str],
        message: str | None = None,
        *,
        policy: str | None = None,
        surviving: int | None = None,
        reason: str = "dropped",
    ) -> None:
        self.dropped = sorted(dropped)
        self.policy = policy
        self.surviving = surviving
        self.reason = reason
        if message is None:
            if reason == "quorum":
                parts = [
                    f"quorum not met: sites {self.dropped} missed the "
                    f"response deadline"
                ]
            else:
                parts = [f"sites {self.dropped} are dropped"]
            if policy is not None:
                parts.append(f"active dropout policy: {policy!r}")
            if surviving is not None:
                parts.append(f"surviving sites: {surviving}")
            if reason == "dropped" and policy == "fail" and surviving:
                parts.append(
                    "rerun with Runtime(dropout='exclude') to estimate "
                    "from the survivors"
                )
            message = "; ".join(parts)
        super().__init__(message)

    def degradation_report(self) -> dict:
        """The failure as a structured report (service answers embed this)."""
        return {
            "reason": self.reason,
            "dropped_sites": self.dropped,
            "policy": self.policy,
            "surviving_sites": self.surviving,
            "message": str(self),
        }


@dataclass(frozen=True)
class QuorumPolicy:
    """Answer queries from the first ``n - f`` site responses.

    Ported from the approximate-consensus exemplars (proceed once ``n - f``
    responses arrive): a quorum-mode runtime waits for the fastest
    ``n - f`` sites instead of the full fan-in, treats the rest as
    *stragglers* — excluded from the answer (with survivor
    renormalization) but not discarded, their results late-merge on
    arrival — and fails the query only when fewer than ``n - f`` sites
    respond within the per-site ``deadline``.

    Parameters
    ----------
    f:
        Number of slow/failed sites to tolerate; the quorum is ``n - f``.
    n:
        Expected cluster size (defaults to the actual site count at run
        time).
    deadline:
        Per-site response deadline in simulated seconds; ``None`` defers
        to ``NetworkConditions.deadline`` (and with neither set, every
        site responds and the quorum is simply the fastest ``n - f``).
    """

    f: int = 0
    n: int | None = None
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.f < 0:
            raise ValueError(f"f must be >= 0, got {self.f}")
        if self.n is not None and self.n - self.f < 1:
            raise ValueError(
                f"quorum n - f must be >= 1, got n={self.n}, f={self.f}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be > 0 seconds, got {self.deadline}")

    @classmethod
    def coerce(
        cls, value: "QuorumPolicy | tuple | int | None"
    ) -> "QuorumPolicy | None":
        """Accept a policy, an ``(n, f)`` pair, a bare ``f``, or ``None``."""
        if value is None or isinstance(value, QuorumPolicy):
            return value
        if isinstance(value, tuple):
            n, f = value
            return cls(n=int(n), f=int(f))
        return cls(f=int(value))

    def required(self, k: int) -> int:
        """The quorum size ``n - f`` for an actual cluster of k sites."""
        n = self.n if self.n is not None else k
        if n > k:
            raise ValueError(
                f"quorum expects n={n} sites but the cluster has only {k}"
            )
        return n - self.f


def _default_workers() -> int:
    """Pool width default: env override, then CPU *affinity*, then count.

    ``os.cpu_count()`` reports the machine, not the container: under a
    cgroup cpuset (CI runners, schedulers) it over-provisions the pool and
    the surplus workers just contend.  ``os.sched_getaffinity(0)`` reports
    the CPUs this process may actually run on.  ``REPRO_WORKERS`` wins over
    both, so benchmarks and CI can pin the width explicitly.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            workers = int(env)
        except ValueError:
            raise ValueError(f"REPRO_WORKERS must be an integer, got {env!r}") from None
        if workers < 1:
            raise ValueError(f"REPRO_WORKERS must be >= 1, got {workers}")
        return workers
    if hasattr(os, "sched_getaffinity"):
        try:
            return max(len(os.sched_getaffinity(0)), 1)
        except OSError:  # pragma: no cover - affinity unsupported at runtime
            pass
    return max(os.cpu_count() or 1, 1)


def _noop(_: int) -> None:
    """Pool warm-up task (forces every worker process/thread to spawn)."""
    return None


#: Task-argument ndarrays at least this large ride to process workers via
#: shared memory instead of pickle (below it, the copy wins over the setup).
_SHM_MIN_BYTES = 1 << 16


class _SharedArg:
    """Picklable stand-in for a large ndarray task argument (see Runtime.map)."""

    __slots__ = ("block", "untrack")

    def __init__(self, block: _shm.ShmBlock, untrack: bool) -> None:
        self.block = block
        self.untrack = untrack


#: Per-worker-process cache of attached segments: name -> (view, SharedMemory).
#: Lives for the worker's lifetime; the OS drops the mappings when it exits.
_ATTACHED_VIEWS: dict[str, tuple[np.ndarray, Any]] = {}


def _resolve_shared(arg: Any) -> Any:
    if not isinstance(arg, _SharedArg):
        return arg
    cached = _ATTACHED_VIEWS.get(arg.block.name)
    if cached is None:
        view, seg = _shm.attach(arg.block, untrack=arg.untrack)
        # Workers read fan-out inputs; writing would corrupt shared state.
        view.flags.writeable = False
        cached = (view, seg)
        _ATTACHED_VIEWS[arg.block.name] = cached
    return cached[0]


def _invoke_shared(fn: Callable[..., Any], *args: Any) -> Any:
    """Worker-side trampoline: attach shm-backed args, then run the task."""
    return fn(*[_resolve_shared(a) for a in args])


class WorkerCrashedError(RuntimeError):
    """A resident worker process died mid-conversation (crash or kill)."""


def _resident_worker_main(conn, init_fn, init_args) -> None:
    """Resident worker loop: build the pinned state, then serve calls.

    Protocol (per-slot FIFO over a duplex pipe): the parent sends
    ``(fn, args)`` requests and ``None`` to shut down; the worker answers
    every request — and the initial state construction — with
    ``("ok", result)`` or ``("err", traceback_text)``.
    """
    try:
        state = init_fn(*init_args)
        conn.send(("ok", None))
    except BaseException:
        try:
            conn.send(("err", traceback.format_exc()))
        finally:
            conn.close()
        return
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):  # parent went away
            break
        if request is None:
            break
        fn, args = request
        try:
            conn.send(("ok", fn(state, *args)))
        except BaseException:
            conn.send(("err", traceback.format_exc()))
    conn.close()


class ResidentPool:
    """One pinned worker per slot, holding slot state across calls.

    Created via :meth:`Runtime.resident_pool`.  Slot ``i``'s state is built
    once by ``init_fn(*init_tasks[i])`` inside the worker and every
    subsequent ``fn`` runs as ``fn(state, *args)`` against it — per-epoch
    traffic shrinks to the call arguments and return values.  Calls to one
    slot execute in submission order (FIFO); distinct slots run
    concurrently (under the process/thread executors).

    Usage discipline: :meth:`submit` enqueues asynchronously, :meth:`drain`
    collects every outstanding result for a slot in order, :meth:`call` is
    the synchronous convenience (requires the slot to be drained).  Worker
    exceptions re-raise in the caller with the worker traceback attached;
    a dead worker process raises :class:`WorkerCrashedError`.
    """

    def __init__(self, num_slots: int) -> None:
        self._pending = [0] * num_slots
        self._closed = False

    # Subclass hooks ------------------------------------------------------
    def _dispatch(self, slot: int, fn: Callable[..., Any], args: tuple) -> None:
        raise NotImplementedError

    def _collect(self, slot: int) -> Any:
        raise NotImplementedError

    def _shutdown(self) -> None:
        raise NotImplementedError

    # Public API ----------------------------------------------------------
    @property
    def num_slots(self) -> int:
        return len(self._pending)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (no further submits/results)."""
        return self._closed

    def pending(self, slot: int) -> int:
        """Outstanding (submitted, not yet drained) calls for ``slot``."""
        return self._pending[slot]

    def submit(self, slot: int, fn: Callable[..., Any], *args: Any) -> None:
        """Enqueue ``fn(state, *args)`` on ``slot`` (returns immediately)."""
        if self._closed:
            raise RuntimeError("resident pool is closed")
        self._dispatch(slot, fn, args)
        self._pending[slot] += 1

    def result(self, slot: int) -> Any:
        """The oldest outstanding result for ``slot`` (blocks until ready)."""
        if self._closed:
            # Without this guard a post-close result() would reach into the
            # subclass's torn-down connection/executor lists and surface as
            # an IndexError — a lifecycle violation must read as one.
            raise RuntimeError("resident pool is closed")
        if self._pending[slot] < 1:
            raise RuntimeError(f"no outstanding call on slot {slot}")
        self._pending[slot] -= 1
        return self._collect(slot)

    def drain(self, slot: int) -> list[Any]:
        """All outstanding results for ``slot``, in submission order."""
        return [self.result(slot) for _ in range(self._pending[slot])]

    def call(self, slot: int, fn: Callable[..., Any], *args: Any) -> Any:
        """Synchronous ``fn(state, *args)`` on a drained slot."""
        if self._pending[slot]:
            raise RuntimeError(
                f"slot {slot} has {self._pending[slot]} outstanding calls; "
                f"drain() before a synchronous call"
            )
        self.submit(slot, fn, *args)
        return self.result(slot)

    def close(self) -> None:
        """Shut every worker down (idempotent; outstanding results dropped)."""
        if self._closed:
            return
        self._closed = True
        self._shutdown()

    def __enter__(self) -> "ResidentPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class _SerialResidentPool(ResidentPool):
    """Inline variant: states live in the caller, submit executes eagerly."""

    def __init__(self, init_fn, init_tasks) -> None:
        super().__init__(len(init_tasks))
        self._states = [init_fn(*task) for task in init_tasks]
        self._results: list[deque] = [deque() for _ in init_tasks]

    def _dispatch(self, slot, fn, args) -> None:
        self._results[slot].append(fn(self._states[slot], *args))

    def _collect(self, slot):
        return self._results[slot].popleft()

    def _shutdown(self) -> None:
        self._states = []
        self._results = []

    def state(self, slot: int):
        """Direct access to a slot's live state (serial/threads only)."""
        return self._states[slot]


class _ThreadResidentPool(_SerialResidentPool):
    """One single-thread executor per slot: FIFO per slot, slots concurrent.

    States still live in this process (threads share memory), so
    :meth:`state` works here too; the GIL-releasing kernel backends are
    what let the per-slot threads actually overlap.
    """

    def __init__(self, init_fn, init_tasks) -> None:
        ResidentPool.__init__(self, len(init_tasks))
        self._executors = [
            ThreadPoolExecutor(max_workers=1, thread_name_prefix=f"repro-resident-{i}")
            for i in range(len(init_tasks))
        ]
        init_futures = [
            ex.submit(init_fn, *task) for ex, task in zip(self._executors, init_tasks)
        ]
        self._states = [f.result() for f in init_futures]
        self._results = [deque() for _ in init_tasks]

    def _run(self, slot, fn, args):
        return fn(self._states[slot], *args)

    def _dispatch(self, slot, fn, args) -> None:
        self._results[slot].append(self._executors[slot].submit(self._run, slot, fn, args))

    def _collect(self, slot):
        return self._results[slot].popleft().result()

    def _shutdown(self) -> None:
        for ex in self._executors:
            ex.shutdown(wait=True, cancel_futures=True)
        self._executors = []
        self._states = []
        self._results = []


class _ProcessResidentPool(ResidentPool):
    """One dedicated worker process per slot, duplex pipe, FIFO protocol."""

    def __init__(self, init_fn, init_tasks, context) -> None:
        super().__init__(len(init_tasks))
        self._procs = []
        self._conns = []
        for i, task in enumerate(init_tasks):
            parent_conn, child_conn = context.Pipe()
            proc = context.Process(
                target=_resident_worker_main,
                args=(child_conn, init_fn, tuple(task)),
                daemon=True,
                name=f"repro-resident-{i}",
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        for slot in range(len(init_tasks)):  # init handshake (errors surface)
            self._receive(slot)

    def _receive(self, slot: int):
        try:
            kind, payload = self._conns[slot].recv()
        except (EOFError, OSError):
            # Reap the dead worker so the exit code makes it into the error
            # (the pipe closes a beat before the process is join-able).
            self._procs[slot].join(timeout=5)
            code = self._procs[slot].exitcode
            raise WorkerCrashedError(
                f"resident worker {slot} died (exit code {code})"
            ) from None
        if kind == "err":
            raise RuntimeError(f"resident worker {slot} task failed:\n{payload}")
        return payload

    def _dispatch(self, slot, fn, args) -> None:
        try:
            self._conns[slot].send((fn, args))
        except (BrokenPipeError, OSError):
            code = self._procs[slot].exitcode
            raise WorkerCrashedError(
                f"resident worker {slot} died (exit code {code})"
            ) from None

    def _collect(self, slot):
        return self._receive(slot)

    def _shutdown(self) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc, conn in zip(self._procs, self._conns):
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
            conn.close()
        self._procs = []
        self._conns = []


class Runtime:
    """Executes the engine's per-site fan-out phases.

    Parameters
    ----------
    executor:
        ``"serial"`` (default), ``"threads"`` or ``"processes"``.
    max_workers:
        Pool width for the concurrent executors.  Default: the
        ``REPRO_WORKERS`` env var, else the CPU *affinity* count
        (:func:`os.sched_getaffinity` — honest in containers), else
        ``os.cpu_count()``.
    dropout:
        Policy applied to sites declared dropped by the network conditions:
        ``"fail"`` (default) or ``"exclude"`` (see the module docstring).
    persistent:
        Opt into resident-worker mode: the pool is warmed *eagerly* at
        construction (no cold start on the first epoch), and state-holding
        consumers — :class:`repro.engine.streaming.StreamingSession` — pin
        each site's sketch state in a dedicated worker via
        :meth:`resident_pool`, shrinking per-epoch IPC to update batches
        and counters.  Identical outputs and meters; purely a performance
        mode.

    A runtime is reusable across protocol runs and queries; its worker pool
    is created lazily on the first concurrent :meth:`map` (eagerly under
    ``persistent=True``) and shared until :meth:`close` (also invoked by
    the context-manager exit and at interpreter shutdown).
    """

    def __init__(
        self,
        executor: str = "serial",
        *,
        max_workers: int | None = None,
        dropout: str = "fail",
        quorum: "QuorumPolicy | tuple | int | None" = None,
        persistent: bool = False,
    ) -> None:
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        if dropout not in DROPOUT_POLICIES:
            raise ValueError(f"dropout must be one of {DROPOUT_POLICIES}, got {dropout!r}")
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.executor = executor
        self.max_workers = max_workers
        self.dropout = dropout
        self.quorum = QuorumPolicy.coerce(quorum)
        self.persistent = bool(persistent)
        self._pool: Executor | None = None
        self._atexit_registered = False
        self._resident_pools: list[ResidentPool] = []
        self._adopted_arenas: list[_shm.ShmArena] = []
        self._shm_arena: _shm.ShmArena | None = None
        # id(array) -> (block, shm view, strong ref pinning the id).
        self._shm_cache: dict[int, tuple[_shm.ShmBlock, np.ndarray, np.ndarray]] = {}
        if self.persistent:
            self.warm()

    # ------------------------------------------------------------------ pool
    def _mp_context(self):
        import multiprocessing

        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            return multiprocessing.get_context()

    @property
    def _uses_spawn(self) -> bool:
        """Whether process workers get their own resource tracker (spawn)."""
        return self._mp_context().get_start_method() != "fork"

    def _register_atexit(self) -> None:
        """Install the interpreter-shutdown close hook (at most one live).

        Registration and unregistration must stay exactly paired across
        warm→close cycles: ``atexit.register`` appends unconditionally, so a
        re-register without the matching unregister would stack duplicate
        hooks (each pinning this runtime) for the life of the process.  The
        ``_atexit_registered`` flag is the single source of truth — it is
        only set here and only cleared by :meth:`close` right after the
        ``atexit.unregister`` call.
        """
        if not self._atexit_registered:
            atexit.register(self.close)
            self._atexit_registered = True

    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            workers = self.max_workers or _default_workers()
            if self.executor == "threads":
                self._pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-site"
                )
            else:
                self._pool = ProcessPoolExecutor(
                    max_workers=workers, mp_context=self._mp_context()
                )
            self._register_atexit()
        return self._pool

    def warm(self) -> None:
        """Create the pool and spawn every worker now, off the hot path.

        Both pool classes spawn workers lazily per submission; without a
        warm-up the first parallel epoch pays the full fork/thread-start
        latency.  No-op for the serial executor and for an already-warm
        pool (workers only spawn once).
        """
        if self.executor == "serial":
            return
        pool = self._ensure_pool()
        workers = self.max_workers or _default_workers()
        list(pool.map(_noop, range(workers)))

    def resident_pool(
        self, init_fn: Callable[..., Any], init_tasks: Sequence[tuple]
    ) -> ResidentPool:
        """One pinned worker per slot; see :class:`ResidentPool`.

        The executor decides the worker kind: dedicated processes
        (``processes``), per-slot single-thread executors (``threads``), or
        inline state (``serial``).  Under ``processes`` ``init_fn`` and
        every submitted ``fn`` must be module-level picklables.  The pool
        is tracked and shut down by :meth:`close`.
        """
        if self.executor == "processes":
            pool: ResidentPool = _ProcessResidentPool(
                init_fn, init_tasks, self._mp_context()
            )
        elif self.executor == "threads":
            pool = _ThreadResidentPool(init_fn, init_tasks)
        else:
            pool = _SerialResidentPool(init_fn, init_tasks)
        self._register_atexit()
        self._resident_pools.append(pool)
        return pool

    def discard_resident_pool(self, pool: ResidentPool) -> None:
        """Close one resident pool and stop tracking it.

        Sessions that own a pool call this on close; without it every pool
        ever created stays in the tracking list for the runtime's lifetime —
        harmless for one session, a real leak for a multi-tenant service
        cycling thousands of them over one shared runtime.
        """
        pool.close()
        try:
            self._resident_pools.remove(pool)
        except ValueError:
            pass

    @property
    def resident_pool_count(self) -> int:
        """Live (tracked, not yet closed) resident pools — pool occupancy."""
        return sum(1 for pool in self._resident_pools if not pool.closed)

    # ----------------------------------------------------- arena adoption
    def adopt_arena(self, arena: _shm.ShmArena) -> _shm.ShmArena:
        """Track a caller-owned shm arena for closure with this runtime.

        Sessions allocate their resident sketch state in their own arenas;
        adopting them ties the segments' lifetime to the runtime, so a
        session abandoned without ``close()`` cannot dangle ``/dev/shm``
        segments past :meth:`Runtime.close` (or interpreter shutdown via
        the atexit hook).  A session that does close properly calls
        :meth:`release_arena` first and closes the arena itself.
        """
        self._adopted_arenas.append(arena)
        self._register_atexit()
        return arena

    def release_arena(self, arena: _shm.ShmArena) -> None:
        """Stop tracking an adopted arena (ownership returns to the caller)."""
        try:
            self._adopted_arenas.remove(arena)
        except ValueError:
            pass

    # ----------------------------------------------------- shared task inputs
    def _share_array(self, arr: np.ndarray) -> _SharedArg:
        """Publish a task-argument array through shared memory (cached).

        The segment is keyed by the array's identity and *refreshed* (one
        memcpy) on every dispatch, so in-place mutations between calls —
        e.g. a streaming shard growing across epochs — are always visible;
        workers attach once and read directly, paying zero pickling.
        """
        key = id(arr)
        entry = self._shm_cache.get(key)
        if (
            entry is None
            or entry[2] is not arr
            or entry[1].shape != arr.shape
            or entry[1].dtype != arr.dtype
        ):
            if self._shm_arena is None:
                self._shm_arena = _shm.ShmArena()
            view, block = self._shm_arena.allocate(arr.shape, arr.dtype)
            entry = (block, view, arr)
            self._shm_cache[key] = entry
        entry[1][...] = arr
        return _SharedArg(entry[0], untrack=self._uses_spawn)

    def _wrap_shared(self, tasks: Sequence[tuple]) -> tuple[list[tuple], bool]:
        wrapped: list[tuple] = []
        any_shared = False
        for task in tasks:
            out = []
            for arg in task:
                if (
                    isinstance(arg, np.ndarray)
                    and arg.dtype != object
                    and arg.nbytes >= _SHM_MIN_BYTES
                ):
                    out.append(self._share_array(arg))
                    any_shared = True
                else:
                    out.append(arg)
            wrapped.append(tuple(out))
        return wrapped, any_shared

    def close(self) -> None:
        """Shut pools down and release shared memory (idempotent)."""
        for pool in self._resident_pools:
            pool.close()
        self._resident_pools.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for arena in self._adopted_arenas:
            arena.close()
        self._adopted_arenas.clear()
        if self._shm_arena is not None:
            self._shm_arena.close()
            self._shm_arena = None
        self._shm_cache.clear()
        if self._atexit_registered:
            # Drop the interpreter-shutdown hook so closed runtimes are
            # garbage-collectable instead of accumulating in the atexit list.
            atexit.unregister(self.close)
            self._atexit_registered = False

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------- map
    def map(self, fn: Callable[..., Any], tasks: Sequence[tuple]) -> list[Any]:
        """Run ``fn(*task)`` for every task; results come back in task order.

        The serial executor (and any call with fewer than two tasks, where
        concurrency cannot help) runs inline on the caller's thread — but a
        concurrent runtime still creates its pool on the way through, so a
        tiny first phase no longer pushes the pool-spawn latency onto the
        first real parallel epoch.  For the ``processes`` executor ``fn``
        must be a module-level function and every task element picklable;
        large ndarray task arguments travel via shared memory (attached
        once per worker, refreshed per dispatch) instead of per-task
        pickles.
        """
        if self.executor == "serial":
            return [fn(*task) for task in tasks]
        if len(tasks) < 2:
            self._ensure_pool()
            return [fn(*task) for task in tasks]
        pool = self._ensure_pool()
        if self.executor == "processes":
            wrapped, any_shared = self._wrap_shared(tasks)
            if any_shared:
                return list(
                    pool.map(_invoke_shared, [fn] * len(wrapped), *zip(*wrapped))
                )
        return list(pool.map(fn, *zip(*tasks)))

    def map_async(
        self, fn: Callable[..., Any], tasks: Sequence[tuple]
    ) -> Callable[[], list[Any]]:
        """Dispatch every task now; join (and get ordered results) later.

        Returns a zero-argument callable producing the same list
        :meth:`map` would have — the caller runs other work between
        dispatch and join (e.g. the streaming coordinator merges deltas
        while the workers encode them).  Serial execution — the serial
        executor or a sub-concurrent task count — runs eagerly at dispatch
        so the join can never surprise.  Until the join returns, task
        arguments must not be mutated: the threads executor reads them in
        place, and a pending process pickle may still be reading them too.
        """
        if self.executor == "serial" or len(tasks) < 2:
            if self.executor != "serial":
                self._ensure_pool()
            results = [fn(*task) for task in tasks]
            return lambda: results
        pool = self._ensure_pool()
        if self.executor == "processes":
            wrapped, any_shared = self._wrap_shared(tasks)
            if any_shared:
                futures = [pool.submit(_invoke_shared, fn, *task) for task in wrapped]
                return lambda: [future.result() for future in futures]
        futures = [pool.submit(fn, *task) for task in tasks]
        return lambda: [future.result() for future in futures]

    def map_sites(
        self,
        fn: Callable[..., tuple[Any, Any]],
        sites: Sequence[Any],
        tasks: Sequence[tuple],
    ) -> list[Any]:
        """Fan ``fn(site.rng, *task)`` out over sites; restore advanced rngs.

        ``fn`` must return ``(result, rng)``.  Each site's private generator
        is passed as the first argument and *replaced* by the returned one,
        so draws made in a worker process are visible to later phases — the
        serial/threads executors return the site's own (mutated) generator
        and the replacement is a no-op.  Results are in site order.
        """
        outcomes = self.map(
            fn, [(site.rng,) + tuple(task) for site, task in zip(sites, tasks)]
        )
        results = []
        for site, (result, rng) in zip(sites, outcomes):
            site.rng = rng
            results.append(result)
        return results

    # ---------------------------------------------------------------- faults
    def partition_dropped(
        self, site_names: Sequence[str], dropped: Iterable[str]
    ) -> tuple[list[int], list[str]]:
        """Split site indices into (surviving, dropped-names) under policy.

        Returns the indices of surviving sites (in order) and the sorted
        names actually dropped.  Raises :class:`SiteDroppedError` when the
        policy is ``"fail"`` and any site is dropped, or when no site
        survives — and ``ValueError`` when a declared name matches no site
        (a typo'd fault declaration must not silently test nothing).
        """
        dropped = set(dropped)
        unknown = dropped - set(site_names)
        if unknown:
            raise ValueError(
                f"dropped sites {sorted(unknown)} match no site in this "
                f"topology (sites: {list(site_names)})"
            )
        if not dropped:
            return list(range(len(site_names))), []
        surviving = [i for i, name in enumerate(site_names) if name not in dropped]
        if self.dropout == "fail":
            raise SiteDroppedError(
                sorted(dropped), policy=self.dropout, surviving=len(surviving)
            )
        if not surviving:
            raise SiteDroppedError(
                sorted(dropped),
                "every site is dropped; nothing can be estimated",
                policy=self.dropout,
                surviving=0,
            )
        return surviving, sorted(dropped)

    def partition_quorum(
        self,
        site_names: Sequence[str],
        conditions=None,
        tree=None,
    ) -> tuple[list[int], list[str], dict | None]:
        """Split site indices into (quorum contributors, stragglers) under
        the runtime's :class:`QuorumPolicy`.

        The simulated response time of a site is its link latency under
        ``conditions`` (ideal links respond instantly).  Sites beyond the
        per-site deadline never count as responders; of the responders, the
        fastest ``n - f`` (site order breaking ties) form the quorum and
        the rest are stragglers — excluded from this answer, merged late.
        Raises :class:`SiteDroppedError` (``reason="quorum"``) when fewer
        than ``n - f`` sites respond in time.

        The scan is a single NumPy pass: one latency vector, one boolean
        deadline mask, one *stable* argsort (ties break by site order,
        exactly like the historical per-site sort — contributor sets are
        pinned bit-identical).

        With a :class:`~repro.comm.tree.TreeSpec` the latencies resolve
        per *edge* (exact override > enclosing region > default) and the
        details additionally report how each aggregator's subtree fared
        (``per_subtree``: sites present vs contributing), so quorum
        accounting follows the hierarchy.

        Returns ``(contributor indices, straggler names, quorum details)``
        — details is ``None`` when no quorum policy is active.
        """
        policy = self.quorum
        if policy is None:
            return list(range(len(site_names))), [], None
        k = len(site_names)
        required = policy.required(k)
        deadline = policy.deadline
        if deadline is None and conditions is not None:
            deadline = conditions.deadline
        if conditions is None:
            latencies = np.zeros(k, dtype=np.float64)
        elif tree is not None and conditions.regions:
            latencies = np.array(
                [
                    conditions.edge_link(name, tree.ancestors(name)).latency
                    for name in site_names
                ],
                dtype=np.float64,
            )
        else:
            latencies = np.full(k, conditions.default.latency, dtype=np.float64)
            if conditions.overrides:
                index = {name: i for i, name in enumerate(site_names)}
                for name, model in conditions.overrides.items():
                    if name in index:
                        latencies[index[name]] = model.latency
        if deadline is None:
            responders = np.arange(k)
        else:
            responders = np.flatnonzero(latencies <= deadline)
        if responders.size < required:
            missed = [
                site_names[i] for i in np.flatnonzero(latencies > (deadline or 0.0))
            ]
            raise SiteDroppedError(
                missed,
                policy=self.dropout,
                surviving=int(responders.size),
                reason="quorum",
            )
        ordered = responders[np.argsort(latencies[responders], kind="stable")]
        contributors = [int(i) for i in np.sort(ordered[:required])]
        in_quorum = set(contributors)
        stragglers = [
            name for i, name in enumerate(site_names) if i not in in_quorum
        ]
        details = {
            "n": policy.n if policy.n is not None else k,
            "f": policy.f,
            "required": required,
            "deadline": deadline,
            "quorum_met": True,
            "contributing_sites": [site_names[i] for i in contributors],
            "stragglers": stragglers,
            "arrival_s": {
                name: float(latencies[i]) for i, name in enumerate(site_names)
            },
        }
        if tree is not None and tree.aggregators:
            present = set(site_names)
            contributing = set(details["contributing_sites"])
            details["per_subtree"] = {
                agg: {
                    "sites": sum(
                        1 for leaf in tree.subtree_sites(agg) if leaf in present
                    ),
                    "contributing": sum(
                        1 for leaf in tree.subtree_sites(agg) if leaf in contributing
                    ),
                }
                for agg in tree.aggregators
            }
        return contributors, stragglers, details

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        parts = [repr(self.executor), f"dropout={self.dropout!r}"]
        if self.quorum is not None:
            parts.append(f"quorum={self.quorum}")
        return f"Runtime({', '.join(parts)})"


#: The shared default: serial execution, fail-on-dropout.  The serial
#: executor never allocates a pool, so one stateless instance backs every
#: protocol run and helper invoked without an explicit runtime.
SERIAL_RUNTIME = Runtime()
