"""Algorithm 4 / Corollary 5.2 / Theorem 5.3, k sites: heavy hitters of ``A B``.

The goal is a set ``S`` with ``HH^p_phi(C) ⊆ S ⊆ HH^p_{phi-eps}(C)`` where
``HH^p_phi(C) = {(i,j) : |C_ij|^p >= phi ||C||_p^p}``.

Two families, both with every Alice-side quantity replaced by a mergeable
per-site summary (so the two-party protocols are the ``k = 1`` case):

* :class:`StarHeavyHittersProtocol` — general non-negative integer
  matrices, ``O~((sqrt(phi)/eps) n)`` bits, ``O(1)`` rounds:

  1. Everyone learns ``T ~= ||C||_p^p`` — per-site column sums merged at
     the coordinator for ``p = 1`` (Remark 2), the k-site Algorithm 1 at
     accuracy ``eps/(4 phi)`` otherwise — and the coordinator broadcasts
     ``T`` back.
  2. Every site samples its shard's entries with the paper's rate ``beta``,
     scaling ``C`` down to ``C^beta`` while keeping heavy entries
     detectable.
  3. Star sparse-product exchange (Lemma 2.5 substitute): sites upload
     per-column non-zero counts (merged into the global ``u``); for each
     shared item the cheaper side ships — the coordinator sends its
     ``B``-rows to the sites that need them, sites ship their column lists
     upstream.
  4. Sites forward their shares' significant entries; the coordinator
     thresholds ``C' = C'_sites + C_coord`` and reports survivors.

* :class:`StarBinaryHeavyHittersProtocol` — binary matrices (database
  joins), ``O~(n + phi/eps^2)`` bits via the ``l_inf`` machinery:
  universe sampling, the per-item index exchange, candidate generation
  from every share, and verification by a shared random subset of
  coordinates.
"""

from __future__ import annotations

import math

import numpy as np

from repro.comm import bitcost
from repro.core.result import HeavyHitterOutput
from repro.engine.base import StarProtocol
from repro.engine.exchange import star_exchange_item_supports
from repro.engine.l1 import shard_column_sums
from repro.engine.linf import _universe_mask_rng
from repro.engine.lp_norm import check_inner_dims, star_lp_pp_estimate, total_rows_of
from repro.engine.topology import Coordinator, Site

__all__ = [
    "StarBinaryHeavyHittersProtocol",
    "StarHeavyHittersProtocol",
    "entry_sampling_rate",
    "forward_threshold",
    "report_heavy_entries",
]


def entry_sampling_rate(
    phi: float, epsilon: float, p: float, *, beta_constant: float, n: int, total_pp: float
) -> float:
    """Step 2's down-sampling rate ``beta`` (one definition for every k)."""
    heavy_value = ((phi / 8.0) * total_pp) ** (1.0 / p)
    return min(
        beta_constant
        * math.log(max(n, 2))
        / ((epsilon / phi) ** 2 * max(heavy_value, 1e-12)),
        1.0,
    )


def forward_threshold(
    phi: float, epsilon: float, p: float, beta: float, total_pp: float
) -> float:
    """Step 4's threshold for forwarding locally significant entries."""
    if p == 1.0:
        # Faithful Algorithm 4 threshold for the forwarded entries.
        return epsilon * beta * total_pp / 8.0
    return beta * ((max(phi - epsilon, 0.0)) * total_pp) ** (1.0 / p) / 2.0


def _beta_shard_task(
    rng: np.random.Generator, shard: np.ndarray, beta: float
) -> tuple[np.ndarray, np.random.Generator]:
    """Step 2 fan-out: down-sample one shard's entries at rate ``beta``.

    Draws from the site's private ``rng`` (returned advanced per the
    runtime contract).
    """
    keep = rng.uniform(size=shard.shape) < beta
    return np.where((shard != 0) & keep, shard, 0).astype(np.int64), rng


def _nonzero_counts_task(beta_shard: np.ndarray) -> np.ndarray:
    """Step 3 fan-out: one site's per-column non-zero counts (mergeable)."""
    return np.count_nonzero(beta_shard, axis=0)


def _site_share_task(
    beta_shard: np.ndarray,
    b: np.ndarray,
    ship_mask: np.ndarray,
    coord_ships: np.ndarray,
    row_offset: int,
    total_rows: int,
    value_bits: int,
    report_threshold: float,
    n: int,
) -> tuple[np.ndarray, int, np.ndarray, int, dict, int]:
    """Steps 3-4 fan-out: one site's exchange lists, shares and heavy entries.

    Returns ``(shipped item indices, ship_bits, coordinator-share block,
    site-share non-zeros, heavy entries with global row indices,
    entry_bits)`` so the serial phase only sends and accumulates — the
    shipped-item list and its bit charge come from the same mask, so they
    cannot drift apart.
    """
    ship_items = np.flatnonzero(ship_mask)
    ship_bits = 0
    for j in ship_items:
        ship_bits += int(np.count_nonzero(beta_shard[:, j])) * (
            bitcost.bits_for_index(max(total_rows, 1)) + value_bits
        )
    coord_block = beta_shard[:, ship_mask] @ b[ship_mask, :]

    c_site = beta_shard[:, coord_ships] @ b[coord_ships, :]
    heavy_site = {
        (int(i) + row_offset, int(j)): int(c_site[i, j])
        for i, j in zip(*np.nonzero(c_site > report_threshold))
    }
    entry_bits = bitcost.bits_for_int(len(heavy_site)) + len(heavy_site) * (
        2 * bitcost.bits_for_index(max(n, 2)) + bitcost.INT_ENTRY_BITS
    )
    return (
        ship_items,
        ship_bits,
        coord_block,
        int(np.count_nonzero(c_site)),
        heavy_site,
        entry_bits,
    )


def _candidate_task(
    share: np.ndarray, row_offset: int, p: float, threshold: float
) -> list[tuple[int, int]]:
    """Binary-protocol step 3 fan-out: one site's candidate entries."""
    return sorted(
        (int(i) + row_offset, int(j))
        for i, j in zip(*np.nonzero(share.astype(float) ** p >= threshold))
    )


def report_heavy_entries(
    c_prime: np.ndarray, *, phi: float, epsilon: float, p: float, beta: float, total_pp: float
) -> tuple[HeavyHitterOutput, float]:
    """Final thresholding of ``C'``: the reported pairs with rescaled estimates."""
    if p == 1.0:
        output_threshold = beta * (phi - epsilon / 2.0) * total_pp
    else:
        output_threshold = beta * ((phi - epsilon / 2.0) * total_pp) ** (1.0 / p)
    pairs = set()
    estimates: dict[tuple[int, int], float] = {}
    for i, j in zip(*np.nonzero(c_prime >= output_threshold)):
        pair = (int(i), int(j))
        pairs.add(pair)
        estimates[pair] = float(c_prime[i, j] / beta)
    return HeavyHitterOutput(pairs=pairs, estimates=estimates), output_threshold


class StarHeavyHittersProtocol(StarProtocol):
    """``l_p``-(phi, eps) heavy hitters of ``A B`` (non-negative integers).

    Parameters
    ----------
    phi:
        Heaviness threshold (``0 < eps <= phi <= 1``).
    epsilon:
        Slack of the output set (entries between ``phi - eps`` and ``phi``
        may or may not be reported).
    p:
        Norm parameter in ``(0, 2]``; ``p = 1`` is the faithful Algorithm 4,
        other values follow Corollary 5.2.
    beta_constant:
        Constant in the sampling rate (the paper's ``10^4 log n``).
    """

    name = "heavy-hitters-general"

    def __init__(
        self,
        phi: float,
        epsilon: float,
        *,
        p: float = 1.0,
        beta_constant: float = 64.0,
        rho_constant: float = 48.0,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if not 0 < epsilon <= phi <= 1:
            raise ValueError(f"need 0 < eps <= phi <= 1, got eps={epsilon}, phi={phi}")
        if not 0 < p <= 2:
            raise ValueError(f"p must be in (0, 2], got {p}")
        self.phi = float(phi)
        self.epsilon = float(epsilon)
        self.p = float(p)
        self.beta_constant = float(beta_constant)
        self.rho_constant = float(rho_constant)

    # ----------------------------------------------------------------- run
    def _execute(self, coordinator: Coordinator, sites: list[Site]):
        b = np.asarray(coordinator.data, dtype=np.int64)
        shards = [np.asarray(site.data, dtype=np.int64) for site in sites]
        if np.any(b < 0) or any(np.any(shard < 0) for shard in shards):
            raise ValueError("heavy-hitter protocol requires non-negative matrices")
        check_inner_dims(sites, b)
        total_rows = total_rows_of(sites)
        n_items = b.shape[0]
        n = max(total_rows, n_items, b.shape[1])

        # --- Step 1: everyone learns T ~ ||C||_p^p --------------------------
        total_pp = self._estimate_total_pp(coordinator, sites, shards, b)
        if total_pp <= 0:
            return HeavyHitterOutput(), {"total_pp": 0.0, "beta": 1.0}
        coordinator.broadcast(
            total_pp, label="hh/total-norm", bits=bitcost.FLOAT_BITS, sites=sites
        )

        # --- Step 2: sites scale C down by entry sampling (fan-out) ---------
        beta = entry_sampling_rate(
            self.phi, self.epsilon, self.p,
            beta_constant=self.beta_constant, n=n, total_pp=total_pp,
        )
        beta_shards = self.runtime.map_sites(
            _beta_shard_task, sites, [(shard, beta) for shard in shards]
        )

        # --- Step 3: star sparse-product exchange ---------------------------
        values_are_binary = bool(
            all(np.all((s == 0) | (s == 1)) for s in beta_shards)
            and np.all((b == 0) | (b == 1))
        )
        value_bits = 0 if values_are_binary else bitcost.INT_ENTRY_BITS

        # Upstream: per-site per-column non-zero counts (mergeable; counts
        # fan out, sends stay serial in site order).
        site_counts = self.runtime.map(
            _nonzero_counts_task, [(beta_shard,) for beta_shard in beta_shards]
        )
        for site, beta_shard, u_site in zip(sites, beta_shards, site_counts):
            site.send(
                u_site,
                label="hh/sparse-product-counts",
                bits=n_items * bitcost.bits_for_index(max(beta_shard.shape[0] + 1, 2)),
            )
        u = np.sum(site_counts, axis=0)
        v = np.count_nonzero(b, axis=1)

        # Ownership: for each active item the cheaper side ships its lists.
        active = (u > 0) & (v > 0)
        coord_ships = active & (v < u)
        site_ships = active & (v >= u)

        # Downstream: B-rows for coordinator-shipped items, to the sites
        # whose shards touch them, plus each site's shipping instructions.
        for site, u_site in zip(sites, site_counts):
            needed = coord_ships & (u_site > 0)
            down_bits = n_items  # the per-item instruction bitmap
            for j in np.flatnonzero(needed):
                down_bits += int(v[j]) * (
                    bitcost.bits_for_index(max(b.shape[1], 1)) + value_bits
                )
            coordinator.send(
                site,
                {"ship_items": np.flatnonzero(site_ships & (u_site > 0)), "b_rows": needed},
                label="hh/coordinator-lists",
                bits=down_bits,
            )

        # Upstream: sites ship their column lists and, in the same round,
        # the significant entries of their shares of C^beta.
        report_threshold = forward_threshold(
            self.phi, self.epsilon, self.p, beta, total_pp
        )

        # Fan-out: per-site exchange lists, both shares' accumulation, and
        # the locally significant entries; the serial phase sends in site
        # order and assembles the coordinator's view.
        share_outcomes = self.runtime.map(
            _site_share_task,
            [
                (
                    beta_shard,
                    b,
                    site_ships & (u_site > 0),
                    coord_ships,
                    site.row_offset,
                    total_rows,
                    value_bits,
                    report_threshold,
                    n,
                )
                for site, u_site, beta_shard in zip(sites, site_counts, beta_shards)
            ],
        )
        heavy_site_entries: dict[tuple[int, int], int] = {}
        site_share_nonzeros = 0
        c_coord = np.zeros((total_rows, b.shape[1]), dtype=np.int64)
        for site, beta_shard, outcome in zip(sites, beta_shards, share_outcomes):
            ship_items, ship_bits, coord_block, share_nonzeros, heavy_site, entry_bits = (
                outcome
            )
            site.send(
                {"items": ship_items},
                label="hh/site-lists",
                bits=ship_bits,
            )
            # The coordinator owns the products of shipped items.
            rows = slice(site.row_offset, site.row_offset + beta_shard.shape[0])
            c_coord[rows] = coord_block

            # The site owns the products of coordinator-shipped items; it
            # forwards the significant entries of its share (same round).
            site_share_nonzeros += share_nonzeros
            site.send(heavy_site, label="hh/site-heavy-entries", bits=entry_bits)
            heavy_site_entries.update(heavy_site)

        # --- Step 4: coordinator thresholds C' = C_coord + forwarded --------
        c_prime = c_coord.astype(float)
        for (i, j), value in heavy_site_entries.items():
            c_prime[i, j] += value

        output, output_threshold = report_heavy_entries(
            c_prime,
            phi=self.phi, epsilon=self.epsilon, p=self.p, beta=beta, total_pp=total_pp,
        )
        details = {
            "total_pp": total_pp,
            "beta": beta,
            # Nonzeros of C^beta across all recovered shares (the historical
            # two-party count_nonzero(c_alice) + count_nonzero(c_bob)).
            "scaled_nonzeros": int(np.count_nonzero(c_coord)) + site_share_nonzeros,
            "output_threshold": output_threshold,
        }
        return output, details

    # ------------------------------------------------------------ internals
    def _estimate_total_pp(
        self,
        coordinator: Coordinator,
        sites: list[Site],
        shards: list[np.ndarray],
        b: np.ndarray,
    ) -> float:
        """Step 1: ``||C||_p^p`` — merged column sums (Remark 2) for p = 1,
        the k-site Algorithm 1 otherwise."""
        if self.p == 1.0:
            site_sums = self.runtime.map(
                shard_column_sums, [(shard,) for shard in shards]
            )
            merged = np.zeros(b.shape[0], dtype=np.int64)
            for site, column_sums in zip(sites, site_sums):
                bits = column_sums.shape[0] * bitcost.bits_for_int(
                    int(max(column_sums.max(initial=0), 1))
                )
                site.send(column_sums, label="hh/column-sums", bits=bits)
                merged += column_sums
            return float(merged.astype(float) @ b.sum(axis=1).astype(float))
        accuracy = min(0.5, self.epsilon / (4.0 * self.phi))
        estimate, _ = star_lp_pp_estimate(
            coordinator,
            sites,
            p=self.p,
            epsilon=accuracy,
            rho_constant=self.rho_constant,
            shared_rng=self.shared_rng,
            label_prefix="hh/",
            runtime=self.runtime,
        )
        return float(estimate)


class StarBinaryHeavyHittersProtocol(StarProtocol):
    """Heavy hitters of ``A B`` for binary matrices (Theorem 5.3).

    Parameters
    ----------
    phi, epsilon:
        Heaviness threshold and slack, ``0 < eps <= phi <= 1``.
    p:
        Norm parameter in ``(0, 2]``.
    alpha_constant:
        Constant in the universe-sampling rate (paper: ``10^4 log n``).
    verify_constant:
        Constant in the per-candidate verification sample size
        ``t = verify_constant * (phi/eps)^2 * log n`` (capped at ``n``).
    """

    name = "heavy-hitters-binary"

    def __init__(
        self,
        phi: float,
        epsilon: float,
        *,
        p: float = 1.0,
        alpha_constant: float = 32.0,
        verify_constant: float = 16.0,
        rho_constant: float = 48.0,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if not 0 < epsilon <= phi <= 1:
            raise ValueError(f"need 0 < eps <= phi <= 1, got eps={epsilon}, phi={phi}")
        if not 0 < p <= 2:
            raise ValueError(f"p must be in (0, 2], got {p}")
        self.phi = float(phi)
        self.epsilon = float(epsilon)
        self.p = float(p)
        self.alpha_constant = float(alpha_constant)
        self.verify_constant = float(verify_constant)
        self.rho_constant = float(rho_constant)

    # ----------------------------------------------------------------- run
    def _execute(self, coordinator: Coordinator, sites: list[Site]):
        shards = []
        for site in sites:
            shard = np.asarray(site.data)
            if not np.all((shard == 0) | (shard == 1)):
                raise ValueError("binary heavy-hitter protocol requires 0/1 matrices")
            shards.append(shard.astype(np.int64))
        b = np.asarray(coordinator.data)
        if not np.all((b == 0) | (b == 1)):
            raise ValueError("binary heavy-hitter protocol requires 0/1 matrices")
        b = b.astype(np.int64)
        check_inner_dims(sites, b)
        total_rows = total_rows_of(sites)
        n_items = b.shape[0]
        n = max(total_rows, n_items, b.shape[1])

        # --- Step 1: estimate T = ||C||_p^p ---------------------------------
        accuracy = min(0.5, self.epsilon / (4.0 * self.phi))
        total_pp, _ = star_lp_pp_estimate(
            coordinator,
            sites,
            p=self.p,
            epsilon=accuracy,
            rho_constant=self.rho_constant,
            shared_rng=self.shared_rng,
            label_prefix="hhb/",
            runtime=self.runtime,
        )
        if total_pp <= 0:
            return HeavyHitterOutput(), {"total_pp": 0.0, "beta": 1.0}
        coordinator.broadcast(
            total_pp, label="hhb/total-norm", bits=bitcost.FLOAT_BITS, sites=sites
        )
        lp_norm_estimate = total_pp ** (1.0 / self.p)

        # --- Step 2: universe sampling + index exchange ---------------------
        alpha = (self.alpha_constant * math.log(max(n, 2))) ** (1.0 / self.p)
        beta = min(alpha / (self.phi ** (1.0 / self.p) * lp_norm_estimate), 1.0)
        kept_items = (
            _universe_mask_rng(sites, self.shared_rng).uniform(size=n_items) < beta
        )
        primed = []
        for shard in shards:
            shard_prime = shard.copy()
            shard_prime[:, ~kept_items] = 0
            primed.append(shard_prime)

        site_shares, c_coord, exchange_info = star_exchange_item_supports(
            coordinator,
            sites,
            primed,
            b,
            label_prefix="hhb/",
            send_u_counts=True,
            runtime=self.runtime,
        )

        # --- Step 3: candidate generation (fan-out; serial sends) -----------
        candidate_threshold = (beta**self.p) * self.phi * total_pp / 20.0
        site_candidates = self.runtime.map(
            _candidate_task,
            [
                (share, site.row_offset, self.p, candidate_threshold)
                for site, share in zip(sites, site_shares)
            ],
        )
        candidates: set[tuple[int, int]] = set()
        for site, local in zip(sites, site_candidates):
            site.send(
                local,
                label="hhb/site-candidates",
                bits=bitcost.bits_for_int(len(local))
                + len(local) * 2 * bitcost.bits_for_index(max(n, 2)),
            )
            candidates |= set(local)
        candidates |= {
            (int(i), int(j))
            for i, j in zip(
                *np.nonzero(c_coord.astype(float) ** self.p >= candidate_threshold)
            )
        }
        candidates = sorted(candidates)

        # --- Step 4: verification by shared coordinate sampling -------------
        sample_size = int(
            min(
                n_items,
                max(8, math.ceil(self.verify_constant * (self.phi / self.epsilon) ** 2
                                 * math.log(max(n, 2)))),
            )
        )
        sample_coords = self.shared_rng.choice(n_items, size=sample_size, replace=False)
        scale = n_items / sample_size

        candidate_rows = sorted({i for i, _ in candidates})
        rows_payload: dict[int, np.ndarray] = {}
        for site, shard in zip(sites, shards):
            local_rows = [
                i
                for i in candidate_rows
                if site.row_offset <= i < site.row_offset + shard.shape[0]
            ]
            payload = {i: shard[i - site.row_offset, sample_coords] for i in local_rows}
            site.send(
                payload,
                label="hhb/candidate-row-samples",
                bits=len(local_rows) * (sample_size + bitcost.bits_for_index(max(n, 2))),
            )
            rows_payload.update(payload)

        output_threshold = (self.phi - self.epsilon / 2.0) * total_pp
        pairs = set()
        estimates: dict[tuple[int, int], float] = {}
        for i, j in candidates:
            overlap = float(np.dot(rows_payload[i], b[sample_coords, j]))
            estimate = overlap * scale if sample_size < n_items else overlap
            if estimate**self.p >= output_threshold:
                pairs.add((i, j))
                estimates[(i, j)] = estimate
        output = HeavyHitterOutput(pairs=pairs, estimates=estimates)
        details = {
            "total_pp": total_pp,
            "beta": beta,
            "candidates": len(candidates),
            "verification_sample_size": sample_size,
            "exchanged_indices": exchange_info["exchanged_indices"],
        }
        return output, details
