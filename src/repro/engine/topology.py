"""Endpoints and wiring of the star topology the engine runs on.

A :class:`StarTopology` bundles everything a protocol execution needs: the
metered :class:`repro.comm.network.Network`, one :class:`Site` per shard,
the :class:`Coordinator`, and the seeded randomness (one shared public-coin
stream plus independent private streams per endpoint, spawned from a single
root so runs with equal seeds are comparable across topologies).

The two-party model is the single-site special case: ``StarTopology.build``
with one shard named ``"alice"`` and the hub named ``"bob"`` reproduces the
classic Alice/Bob channel — same seeding order, same round semantics, same
per-message accounting — which is how the :mod:`repro.core` facades execute
the engine protocols.

Shared (public-coin) randomness is modelled exactly as before the
unification: the protocol driver derives one seed and every endpoint
constructs identical helper objects (sketches) from it.  Broadcasting the
seed itself is never charged — the protocols are public-coin, and by
Newman's theorem privatizing the coins costs only an additive ``O(log n)``
bits per site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

from repro.comm.conditions import NetworkConditions
from repro.comm.network import Network, TreeNetwork, merge_payload_group
from repro.comm.transport import IN_PROCESS, Transport
from repro.comm.tree import TreeSpec
from repro.sketch.mergeable import MergeableSketch


def shard_partial_summaries(
    rows: np.ndarray, shard: Any, templates: Sequence[MergeableSketch]
) -> list[MergeableSketch]:
    """One shard's partial summaries under shared sketch ``templates``.

    The engine's only per-row update route, and a picklable module-level
    function so :meth:`repro.engine.runtime.Runtime.map` can fan it out
    across sites under any executor: each summary is built with one batched
    :meth:`~repro.sketch.mergeable.MergeableSketch.update_many` call over
    the whole shard (global row indexing), never row by row.
    """
    # int64 shards pass through without a universe-sized copy; sketches
    # only read the values.
    values = np.asarray(shard).astype(np.int64, copy=False)
    partials = []
    for template in templates:
        partial = template.empty_copy()
        partial.update_many(rows, values)
        partials.append(partial)
    return partials


def coerce_shards(shards: Sequence[Any]) -> list[np.ndarray]:
    """Validate and normalize a list of row-shards."""
    shards = [np.asarray(shard) for shard in shards]
    if not shards:
        raise ValueError("need at least one site shard")
    for shard in shards:
        if shard.ndim != 2:
            raise ValueError("every shard must be a 2-dimensional matrix")
    if len({shard.shape[1] for shard in shards}) != 1:
        raise ValueError("all shards must agree on the inner dimension")
    return shards


class Site:
    """One leaf of the star, holding a row-shard of the global matrix.

    Parameters
    ----------
    name:
        Endpoint name (must be one of the network's site names).
    shard:
        The site's local block of rows of the global matrix ``A``.
    network:
        The shared star network.
    row_offset:
        Index of the shard's first row in the global row numbering, so the
        site can report global coordinates.
    rng:
        The site's private randomness.
    """

    def __init__(
        self,
        name: str,
        shard: Any,
        network: Network,
        *,
        row_offset: int = 0,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.name = name
        self.data = shard
        self.network = network
        self.row_offset = int(row_offset)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.scratch: dict[str, Any] = {}

    @property
    def rows(self) -> np.ndarray:
        """Global row indices covered by this site's shard."""
        return self.row_offset + np.arange(np.asarray(self.data).shape[0])

    def send(
        self,
        payload: Any,
        *,
        label: str = "",
        bits: int | None = None,
        universe: int | None = None,
    ) -> Any:
        """Send ``payload`` upstream to the coordinator."""
        return self.network.send(
            self.name,
            self.network.coordinator_name,
            payload,
            label=label,
            bits=bits,
            universe=universe,
        )

    def partial_summaries(self, *templates: MergeableSketch) -> list[MergeableSketch]:
        """The shard's partial summaries under shared sketch ``templates``.

        Delegates to :func:`shard_partial_summaries` (the engine's only
        per-row update route); protocols that fan the same work out across
        sites call that function through the runtime instead.  The returned
        sketches share their templates' randomness and merge entrywise at
        the coordinator.
        """
        return shard_partial_summaries(self.rows, self.data, templates)

    def partial_summary(self, template: MergeableSketch) -> MergeableSketch:
        """The shard's partial summary under one shared sketch ``template``."""
        return self.partial_summaries(template)[0]

    @property
    def bits_sent(self) -> int:
        """Total bits this site has sent so far."""
        return self.network.bits_sent_by(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Site({self.name!r}, rows {self.row_offset}+{np.asarray(self.data).shape[0]})"


class Coordinator:
    """The hub of the star, holding the matrix ``B``."""

    def __init__(
        self,
        data: Any,
        network: Network,
        *,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.name = network.coordinator_name
        self.data = data
        self.network = network
        self.rng = rng if rng is not None else np.random.default_rng()
        self.scratch: dict[str, Any] = {}

    def send(
        self,
        site: Site | str,
        payload: Any,
        *,
        label: str = "",
        bits: int | None = None,
        universe: int | None = None,
    ) -> Any:
        """Send ``payload`` downstream to one site."""
        receiver = site.name if isinstance(site, Site) else site
        return self.network.send(
            self.name, receiver, payload, label=label, bits=bits, universe=universe
        )

    def broadcast(
        self,
        payload: Any,
        *,
        label: str = "",
        bits: int | None = None,
        sites: Iterable[Site | str] | None = None,
    ) -> Any:
        """Send the same ``payload`` to every site (``bits`` charged per link)."""
        names = None if sites is None else [s.name if isinstance(s, Site) else s for s in sites]
        return self.network.broadcast(payload, label=label, bits=bits, sites=names)

    @property
    def bits_sent(self) -> int:
        """Total bits the coordinator has sent so far (all links)."""
        return self.network.bits_sent_by(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Coordinator({self.name!r})"


@dataclass
class StarTopology:
    """A fully wired star: network, endpoints, and seeded randomness."""

    network: Network
    sites: list[Site]
    coordinator: Coordinator
    shared_rng: np.random.Generator

    @property
    def num_sites(self) -> int:
        return len(self.sites)

    @classmethod
    def build(
        cls,
        shards: Sequence[Any],
        coordinator_data: Any,
        *,
        seed: int | None = None,
        site_names: Sequence[str] | None = None,
        coordinator_name: str = "coordinator",
        conditions: NetworkConditions | None = None,
        transport: Transport | None = None,
    ) -> "StarTopology":
        """Wire a star around ``k = len(shards)`` sites.

        The seeding discipline is load-bearing: the root generator first
        yields the shared (public-coin) seed, then spawns ``k + 1`` private
        streams — sites in shard order, the coordinator last.  For ``k = 1``
        this reproduces the historical two-party driver exactly (alice =
        site stream, bob = coordinator stream), which keeps pre-unification
        transcripts bit-for-bit intact.

        ``conditions`` (per-link latency/bandwidth models) only affect the
        network's simulated makespan, never the transcript itself.

        ``transport`` picks who builds (and therefore carries) the star
        network — default :data:`repro.comm.transport.IN_PROCESS`; the
        service layer passes a socket-backed transport instead.
        """
        shards = coerce_shards(shards)
        k = len(shards)
        if site_names is None:
            site_names = [f"site-{i}" for i in range(k)]
        if len(site_names) != k:
            raise ValueError(f"got {len(site_names)} site names for {k} shards")
        if transport is None:
            transport = IN_PROCESS
        network = transport.build_network(site_names, coordinator_name, conditions)
        root = np.random.default_rng(seed)
        shared_seed = int(root.integers(0, 2**63 - 1))
        rngs = root.spawn(k + 1)
        offsets = np.concatenate(([0], np.cumsum([s.shape[0] for s in shards])[:-1]))
        sites = [
            Site(site_names[i], shards[i], network, row_offset=int(offsets[i]), rng=rngs[i])
            for i in range(k)
        ]
        coordinator = Coordinator(coordinator_data, network, rng=rngs[-1])
        return cls(
            network=network,
            sites=sites,
            coordinator=coordinator,
            shared_rng=np.random.default_rng(shared_seed),
        )


class Aggregator:
    """One interior node of an aggregation tree.

    Aggregators hold no shard and answer no query — they *relay*: the
    :class:`~repro.comm.network.TreeNetwork` stages their children's
    upstream payloads here and forwards one partially merged summary per
    sibling group (see :func:`repro.comm.network.merge_payload_group`).
    The endpoint object carries the node's name, its private randomness
    (spawned *after* the k + 1 site/coordinator streams, so adding
    aggregators never perturbs a site's or the coordinator's stream), and
    a scratch dict, mirroring :class:`Site` / :class:`Coordinator`.
    """

    def __init__(
        self,
        name: str,
        network: TreeNetwork,
        *,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.name = name
        self.network = network
        self.rng = rng if rng is not None else np.random.default_rng()
        self.scratch: dict[str, Any] = {}

    @property
    def children(self) -> tuple[str, ...]:
        """Names of this aggregator's direct children."""
        return self.network.tree.children[self.name]

    @property
    def parent(self) -> str:
        """Name of this aggregator's parent (an aggregator or the root)."""
        return self.network.tree.parent[self.name]

    def merge(self, payloads: Sequence[Any]) -> Any:
        """Partially merge a sibling group (delegates to the shared kernel)."""
        return merge_payload_group(list(payloads))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Aggregator({self.name!r}, children={list(self.children)})"


def normalize_tree(
    tree: "TreeSpec | int | None",
    site_names: Sequence[str],
    coordinator_name: str = "coordinator",
) -> TreeSpec | None:
    """Coerce the public ``tree=`` argument into a validated spec.

    Accepts a full :class:`~repro.comm.tree.TreeSpec`, an integer fan-out
    (sugar for :meth:`TreeSpec.regular`), or ``None`` (flat star).
    """
    if tree is None:
        return None
    if isinstance(tree, int):
        return TreeSpec.regular(site_names, tree, root=coordinator_name)
    return Transport.check_tree(tree, site_names, coordinator_name)


@dataclass
class TreeTopology(StarTopology):
    """A fully wired aggregation tree; the star plus interior aggregators.

    ``StarTopology`` with two extra fields: the shape (:class:`TreeSpec`)
    and the wired :class:`Aggregator` endpoints.  Sites and the coordinator
    are constructed exactly as in :meth:`StarTopology.build` — same seeding
    order, same shard offsets — so protocol bodies run unchanged and their
    estimates are bit-identical to the flat star.  Only the network object
    differs: a :class:`~repro.comm.network.TreeNetwork` that routes, stages
    and partially merges along the tree.
    """

    tree: TreeSpec = None  # type: ignore[assignment]
    aggregators: list[Aggregator] = None  # type: ignore[assignment]

    @classmethod
    def build_tree(
        cls,
        shards: Sequence[Any],
        coordinator_data: Any,
        *,
        tree: "TreeSpec | int",
        seed: int | None = None,
        site_names: Sequence[str] | None = None,
        coordinator_name: str = "coordinator",
        conditions: NetworkConditions | None = None,
        transport: Transport | None = None,
        merge_runtime: Any | None = None,
    ) -> "TreeTopology":
        """Wire an aggregation tree around ``k = len(shards)`` sites.

        The seeding discipline extends :meth:`StarTopology.build`
        append-only: the shared seed and the ``k + 1`` site/coordinator
        streams are drawn first (bit-identical to the star), then the
        aggregator streams are spawned from the same root.  Equal seeds
        therefore give equal site/coordinator randomness across *every*
        tree shape, including the flat star — the load-bearing fact behind
        the bit-identity pins.
        """
        shards = coerce_shards(shards)
        k = len(shards)
        if site_names is None:
            site_names = [f"site-{i}" for i in range(k)]
        if len(site_names) != k:
            raise ValueError(f"got {len(site_names)} site names for {k} shards")
        spec = normalize_tree(tree, site_names, coordinator_name)
        if spec is None:
            raise ValueError("TreeTopology.build_tree needs a tree (spec or fan-out)")
        if transport is None:
            transport = IN_PROCESS
        network = transport.build_network(
            site_names, coordinator_name, conditions, tree=spec
        )
        if merge_runtime is not None and isinstance(network, TreeNetwork):
            network.merge_runtime = merge_runtime
        root = np.random.default_rng(seed)
        shared_seed = int(root.integers(0, 2**63 - 1))
        rngs = root.spawn(k + 1)
        agg_rngs = root.spawn(len(spec.aggregators)) if spec.aggregators else []
        offsets = np.concatenate(([0], np.cumsum([s.shape[0] for s in shards])[:-1]))
        sites = [
            Site(site_names[i], shards[i], network, row_offset=int(offsets[i]), rng=rngs[i])
            for i in range(k)
        ]
        coordinator = Coordinator(coordinator_data, network, rng=rngs[-1])
        aggregators = [
            Aggregator(name, network, rng=agg_rngs[index])
            for index, name in enumerate(spec.aggregators)
        ]
        return cls(
            network=network,
            sites=sites,
            coordinator=coordinator,
            shared_rng=np.random.default_rng(shared_seed),
            tree=spec,
            aggregators=aggregators,
        )
