"""Theorem 3.2, k sites: one-round ``l_0``-sampling of the support of ``A B``.

The goal is a uniformly random non-zero entry ``(i, j)`` of ``C = A B``
(each with probability ``(1 ± eps) / ||C||_0``).  The protocol composes two
linear sketches, both applied to the *columns* of ``C``:

* an ``l_0`` sketch ``S`` (:class:`repro.sketch.l0_sketch.L0Sketch`) to
  estimate ``||C_{*,j}||_0`` for every column ``j`` within ``(1 + eps)``, and
* an ``l_0``-sampler ``T`` (:class:`repro.sketch.l0_sampler.L0Sampler`) to
  draw a uniform non-zero row index inside a chosen column.

Because the sketches are linear and columns of ``C`` satisfy
``C_{*,j} = A B_{*,j}``, every site ships the partial linear images of its
shard (one batched ``update_many`` per sketch, global row indexing) and the
coordinator merges them entrywise — the merged state equals the sketch of
the full ``A`` exactly — before finishing locally.  One round,
``O~(n / eps^2)`` bits per site; with a single site this is precisely the
two-party protocol (Alice ships ``S A`` and ``T A``, Bob finishes).
"""

from __future__ import annotations

from functools import reduce

import numpy as np

from repro.comm import bitcost
from repro.core.result import SampleOutput
from repro.engine.base import StarProtocol
from repro.engine.lp_norm import check_inner_dims, total_rows_of
from repro.engine.topology import Coordinator, Site, shard_partial_summaries
from repro.sketch.l0_sampler import L0Sampler
from repro.sketch.l0_sketch import L0Sketch

__all__ = ["StarL0SamplingProtocol", "finish_l0_sample"]


def finish_l0_sample(
    l0_sketch: L0Sketch,
    sampler: L0Sampler,
    sketched_c: np.ndarray,
    sampler_c: np.ndarray,
    rng: np.random.Generator,
) -> tuple[SampleOutput, dict]:
    """Receiver-side finish: pick a column by estimated ``l_0`` mass, then
    recover a uniform non-zero row inside it."""
    column_l0 = np.maximum(l0_sketch.estimate_rows_pp(sketched_c.T), 0.0)
    total = float(column_l0.sum())
    if total <= 0:
        return SampleOutput(row=None, col=None), {"column_mass": 0.0}
    col = int(rng.choice(sketched_c.shape[1], p=column_l0 / total))
    outcome = sampler.sample(sampler_c[:, col])
    if not outcome.success:
        return (
            SampleOutput(row=None, col=None),
            {"column_mass": total, "column": col, "sampler_failed": True},
        )
    return (
        SampleOutput(row=int(outcome.index), col=col, value=float(outcome.value)),
        {"column_mass": total, "column": col, "sampler_level": outcome.level},
    )


class StarL0SamplingProtocol(StarProtocol):
    """One-round ``l_0``-sampling on ``C = A B`` (Theorem 3.2).

    Parameters
    ----------
    epsilon:
        Accuracy of the column-``l_0`` estimates that drive the column
        choice; the sampled distribution is uniform over the support up to a
        ``(1 ± eps)`` factor.
    sampler_repetitions:
        Independent repetitions inside the per-column ``l_0``-sampler.
    """

    name = "l0-sampling-one-round"

    def __init__(
        self,
        epsilon: float = 0.25,
        *,
        sampler_repetitions: int = 8,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if not 0 < epsilon <= 1:
            raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
        self.epsilon = float(epsilon)
        self.sampler_repetitions = int(sampler_repetitions)

    def _execute(self, coordinator: Coordinator, sites: list[Site]):
        b = np.asarray(coordinator.data)
        check_inner_dims(sites, b)
        total_rows = total_rows_of(sites)

        # Shared randomness: every endpoint derives the same sketch pair.
        l0_sketch = L0Sketch.for_accuracy(total_rows, self.epsilon, self.shared_rng)
        sampler = L0Sampler(
            total_rows, self.shared_rng, repetitions=self.sampler_repetitions
        )

        # Round 1 (the only round): sites -> coordinator, partial summaries.
        # Fan-out: every site pushes its shard through both sketches
        # concurrently; sends and merges stay serial in site order.
        site_summaries = self.runtime.map(
            shard_partial_summaries,
            [(site.rows, site.data, (l0_sketch, sampler)) for site in sites],
        )
        for site, (partial_sketch, partial_sampler) in zip(sites, site_summaries):
            bits = bitcost.bits_for_matrix(partial_sketch.state) + bitcost.bits_for_matrix(
                partial_sampler.state
            )
            site.send(
                {"l0_sketch": partial_sketch, "sampler": partial_sampler},
                label="sketches-of-shard",
                bits=bits,
            )

        # Coordinator: merge the k summaries, then finish exactly like Bob.
        merged_sketch = reduce(
            lambda acc, pair: acc.merge(pair[0]), site_summaries, l0_sketch.empty_copy()
        )
        merged_sampler = reduce(
            lambda acc, pair: acc.merge(pair[1]), site_summaries, sampler.empty_copy()
        )
        sketched_c = merged_sketch.state @ b.astype(np.int64)
        sampler_c = merged_sampler.state @ b.astype(np.int64)
        return finish_l0_sample(
            l0_sketch, sampler, sketched_c, sampler_c, coordinator.rng
        )
