"""Query dispatch shared by the two-party and k-site estimator facades.

:class:`EstimatorBase` maps every query (``lp_norm``, ``join_size``,
``l0_sample``, ``heavy_hitters``, ...) to the engine protocol that answers
it, deriving one independent seed per query from a common stream.  The
concrete facades only say *where the data lives*:

* :class:`repro.core.api.MatrixProductEstimator` holds Alice's and Bob's
  matrices and executes protocols in the two-party view.
* :class:`repro.multiparty.estimator.ClusterEstimator` holds k row-shards
  plus the coordinator's matrix and executes the same protocols over the
  k-site star.

Because both facades share this dispatch (including the seed-stream
discipline), equal seeds produce comparable runs across topologies, and a
query supported in one topology is automatically supported in the other.
"""

from __future__ import annotations

import numpy as np

from repro.comm.conditions import NetworkConditions
from repro.comm.protocol import ProtocolResult
from repro.comm.transport import Transport
from repro.engine.base import StarProtocol
from repro.engine.runtime import Runtime
from repro.engine.heavy_hitters import (
    StarBinaryHeavyHittersProtocol,
    StarHeavyHittersProtocol,
)
from repro.engine.l0_sampling import StarL0SamplingProtocol
from repro.engine.l1 import StarExactL1Protocol, StarL1SamplingProtocol
from repro.engine.linf import (
    StarGeneralMatrixLinfProtocol,
    StarKappaApproxLinfProtocol,
    StarTwoPlusEpsilonLinfProtocol,
)
from repro.engine.lp_norm import StarLpNormProtocol

__all__ = ["EstimatorBase", "is_binary_data"]


def is_binary_data(*arrays: np.ndarray) -> bool:
    """True iff every array is entrywise 0/1 (drives protocol selection)."""
    return all(bool(np.all((array == 0) | (array == 1))) for array in arrays)


class EstimatorBase:
    """Statistics of ``C = A B`` behind a topology-specific ``_run`` hook.

    Subclasses set :attr:`is_binary` during construction and implement
    :meth:`_run`, which executes an engine protocol against their data in
    their topology.

    Every facade accepts an optional :class:`repro.engine.runtime.Runtime`
    (per-site executor + dropout policy),
    :class:`repro.comm.conditions.NetworkConditions` (per-link timing
    models + dropped sites) and :class:`repro.comm.transport.Transport`
    (who carries the star network — in-process simulation or real
    sockets); all are forwarded to every query's protocol run.  The
    defaults — serial execution over ideal in-process links — reproduce
    the historical transcripts bit for bit.
    """

    #: Whether every input matrix is 0/1 (drives protocol selection).
    is_binary: bool = False

    def __init__(
        self,
        *,
        seed: int | None = None,
        runtime: "Runtime | None" = None,
        conditions: "NetworkConditions | None" = None,
        transport: "Transport | None" = None,
        tree=None,
    ) -> None:
        self.seed = seed
        self.runtime = runtime
        self.conditions = conditions
        self.transport = transport
        #: Optional aggregation-tree overlay (a ``TreeSpec`` or an integer
        #: fan-out) forwarded to every query's protocol run by facades that
        #: support hierarchical topologies.  Estimates are bit-identical to
        #: the flat star; only routing, metering and makespan change.
        self.tree = tree
        self._seed_stream = np.random.default_rng(seed)

    def _next_seed(self) -> int:
        return int(self._seed_stream.integers(0, 2**31 - 1))

    def _run(self, protocol: StarProtocol) -> ProtocolResult:
        raise NotImplementedError

    # ------------------------------------------------------------------ lp
    def lp_norm(self, p: float, epsilon: float = 0.25, **kwargs) -> ProtocolResult:
        """(1 + eps)-approximation of ``||A B||_p^p`` for ``p in [0, 2]`` (Thm 3.1)."""
        return self._run(StarLpNormProtocol(p, epsilon, seed=self._next_seed(), **kwargs))

    def join_size(self, epsilon: float = 0.25, **kwargs) -> ProtocolResult:
        """Set-intersection join size ``|A ∘ B| = ||A B||_0`` (p = 0)."""
        return self.lp_norm(0.0, epsilon, **kwargs)

    def natural_join_size(self, **kwargs) -> ProtocolResult:
        """Exact natural-join size ``|A ⋈ B| = ||A B||_1`` (Remark 2)."""
        return self._run(StarExactL1Protocol(seed=self._next_seed(), **kwargs))

    # ------------------------------------------------------------- sampling
    def l0_sample(self, epsilon: float = 0.25, **kwargs) -> ProtocolResult:
        """Uniform sample from the non-zero entries of ``A B`` (Thm 3.2)."""
        return self._run(StarL0SamplingProtocol(epsilon, seed=self._next_seed(), **kwargs))

    def l1_sample(self) -> ProtocolResult:
        """Sample an entry of ``A B`` proportionally to its value (Remark 3)."""
        return self._run(StarL1SamplingProtocol(seed=self._next_seed()))

    # ----------------------------------------------------------------- linf
    def linf(self, epsilon: float = 0.25, **kwargs) -> ProtocolResult:
        """(2 + eps)-approximation of ``||A B||_inf`` for binary inputs (Thm 4.1)."""
        if not self.is_binary:
            raise ValueError(
                "the (2+eps) protocol needs binary matrices; use linf_kappa(...) "
                "with general integer matrices"
            )
        return self._run(
            StarTwoPlusEpsilonLinfProtocol(epsilon, seed=self._next_seed(), **kwargs)
        )

    def linf_kappa(self, kappa: float, **kwargs) -> ProtocolResult:
        """kappa-approximation of ``||A B||_inf`` (Thm 4.3 binary / Thm 4.8 general)."""
        seed = self._next_seed()
        if self.is_binary:
            protocol: StarProtocol = StarKappaApproxLinfProtocol(kappa, seed=seed, **kwargs)
        else:
            protocol = StarGeneralMatrixLinfProtocol(kappa, seed=seed, **kwargs)
        return self._run(protocol)

    # -------------------------------------------------------- heavy hitters
    def heavy_hitters(
        self, phi: float, epsilon: float, *, p: float = 1.0, **kwargs
    ) -> ProtocolResult:
        """``l_p``-(phi, eps) heavy hitters of ``A B`` (Thm 5.1 / Thm 5.3).

        Binary inputs use the cheaper binary protocol automatically.
        """
        seed = self._next_seed()
        if self.is_binary:
            protocol: StarProtocol = StarBinaryHeavyHittersProtocol(
                phi, epsilon, p=p, seed=seed, **kwargs
            )
        else:
            protocol = StarHeavyHittersProtocol(phi, epsilon, p=p, seed=seed, **kwargs)
        return self._run(protocol)
