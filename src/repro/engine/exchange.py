"""The per-item index-exchange primitive shared by Algorithms 2, 3 and 5.2.

Given the sites' (possibly subsampled) binary shards ``A'`` and the
coordinator's binary matrix ``B``, the endpoints learn an additive split of
``C = A' B``: the coordinator accumulates the products of the items the
sites shipped, and every site accumulates its shard's share of the items
the coordinator shipped.

* Every site announces ``u^s_j`` = number of its shard rows containing item
  ``j`` (it may have done so already as part of an enclosing protocol, e.g.
  Algorithm 2's per-level column sums).  The coordinator merges them into
  the global ``u_j``.
* The coordinator compares with ``v_j`` = number of columns of ``B``
  containing item ``j``; for every active item with ``v_j < u_j`` it ships
  its index list ``I_j = {j' : B_{j,j'} = 1}`` to the sites whose shards
  touch the item, which accumulate those items' contributions locally.
* Sites ship their row-index lists for the remaining (non-trivial) items
  and the coordinator accumulates them into its share.

The total shipped volume is ``sum_j min(u_j, v_j)`` indices, the quantity
bounded by ``O~(n^{1.5}/eps)`` (Theorem 4.1) / ``O~(n^{1.5}/kappa)``
(Theorem 4.3) in the paper's analyses.  With a single site this is exactly
the two-party exchange (Bob ships the smaller side's lists, Alice the
rest).
"""

from __future__ import annotations

import numpy as np

from repro.comm import bitcost
from repro.engine.topology import Coordinator, Site

__all__ = ["star_exchange_item_supports"]


def star_exchange_item_supports(
    coordinator: Coordinator,
    sites: list[Site],
    shard_subs: list[np.ndarray],
    b: np.ndarray,
    *,
    site_counts: list[np.ndarray] | None = None,
    label_prefix: str = "",
    send_u_counts: bool = True,
) -> tuple[list[np.ndarray], np.ndarray, dict]:
    """Run the index exchange; returns ``(site_shares, c_coord, info)``.

    Parameters
    ----------
    shard_subs:
        The sites' (subsampled) binary shards ``A'_s``, aligned with
        ``sites``.
    b:
        The coordinator's binary matrix of shape ``(n, m2)``.
    site_counts:
        Per-site item counts ``u^s_j`` if the enclosing protocol already
        transmitted them (Algorithm 2 sends per-level column sums for *all*
        levels up front); computed locally otherwise.
    send_u_counts:
        Whether the counts still need to be transmitted; set to False by
        enclosing protocols that already paid for them, to avoid
        double-charging.

    Returns
    -------
    ``site_shares`` is one matrix per site (the site's share of its shard's
    rows of ``C``), ``c_coord`` the coordinator's share over the full global
    row space; ``site_shares`` stacked plus ``c_coord`` equals ``A' B``.
    """
    shard_subs = [np.asarray(shard, dtype=np.int64) for shard in shard_subs]
    b = np.asarray(b, dtype=np.int64)
    if shard_subs[0].shape[1] != b.shape[0]:
        raise ValueError(
            f"inner dimensions differ: {shard_subs[0].shape} vs {b.shape}"
        )
    n_items = b.shape[0]
    total_rows = sum(shard.shape[0] for shard in shard_subs)

    if site_counts is None:
        site_counts = [shard.sum(axis=0) for shard in shard_subs]
    if send_u_counts:
        for site, shard, u_site in zip(sites, shard_subs, site_counts):
            site.send(
                u_site,
                label=f"{label_prefix}item-counts",
                bits=n_items * bitcost.bits_for_index(max(int(shard.shape[0]) + 1, 2)),
            )

    u = np.sum(site_counts, axis=0)
    v = b.sum(axis=1)
    active = (u > 0) & (v > 0)
    coordinator_ships = active & (u > v)
    site_ships = active & (u <= v)

    # Coordinator -> sites: its column-index lists for items where its side
    # is smaller, sent to the sites whose shards touch the item (plus the
    # per-item bitmap announcing which items it covers).
    for site, u_site in zip(sites, site_counts):
        needed = coordinator_ships & (u_site > 0)
        payload = {}
        down_bits = n_items  # bitmap announcing which items the hub covers
        for j in np.flatnonzero(needed):
            indices = np.flatnonzero(b[j, :])
            payload[int(j)] = indices
            down_bits += bitcost.bits_for_index_list(indices, max(b.shape[1], 1))
        coordinator.send(
            site,
            payload,
            label=f"{label_prefix}coordinator-item-lists",
            bits=down_bits,
        )

    # Sites -> coordinator: their row-index lists for the remaining items.
    # Global row indexing comes from each site's own row_offset (shard_subs
    # must be shape-aligned with the sites' shards).
    c_coord = np.zeros((total_rows, b.shape[1]), dtype=np.int64)
    site_shares = []
    for site, shard, u_site in zip(sites, shard_subs, site_counts):
        ship = site_ships & (u_site > 0)
        payload = {}
        up_bits = 0
        for j in np.flatnonzero(ship):
            indices = np.flatnonzero(shard[:, j])
            payload[int(j)] = site.row_offset + indices
            up_bits += bitcost.bits_for_index_list(indices, max(total_rows, 1))
        site.send(payload, label=f"{label_prefix}site-item-lists", bits=up_bits)

        # Local accumulation: the coordinator owns the items the sites
        # shipped, each site its shard's share of the coordinator's items.
        rows = slice(site.row_offset, site.row_offset + shard.shape[0])
        c_coord[rows] = shard[:, site_ships] @ b[site_ships, :]
        site_shares.append(shard[:, coordinator_ships] @ b[coordinator_ships, :])

    info = {
        "u": u,
        "v": v,
        "exchanged_indices": int(np.minimum(u, v)[active].sum()),
        "site_owned_items": int(coordinator_ships.sum()),
        "coordinator_owned_items": int(site_ships.sum()),
    }
    return site_shares, c_coord, info
