"""The per-item index-exchange primitive shared by Algorithms 2, 3 and 5.2.

Given the sites' (possibly subsampled) binary shards ``A'`` and the
coordinator's binary matrix ``B``, the endpoints learn an additive split of
``C = A' B``: the coordinator accumulates the products of the items the
sites shipped, and every site accumulates its shard's share of the items
the coordinator shipped.

* Every site announces ``u^s_j`` = number of its shard rows containing item
  ``j`` (it may have done so already as part of an enclosing protocol, e.g.
  Algorithm 2's per-level column sums).  The coordinator merges them into
  the global ``u_j``.
* The coordinator compares with ``v_j`` = number of columns of ``B``
  containing item ``j``; for every active item with ``v_j < u_j`` it ships
  its index list ``I_j = {j' : B_{j,j'} = 1}`` to the sites whose shards
  touch the item, which accumulate those items' contributions locally.
* Sites ship their row-index lists for the remaining (non-trivial) items
  and the coordinator accumulates them into its share.

The total shipped volume is ``sum_j min(u_j, v_j)`` indices, the quantity
bounded by ``O~(n^{1.5}/eps)`` (Theorem 4.1) / ``O~(n^{1.5}/kappa)``
(Theorem 4.3) in the paper's analyses.  With a single site this is exactly
the two-party exchange (Bob ships the smaller side's lists, Alice the
rest).
"""

from __future__ import annotations

import numpy as np

from repro.comm import bitcost
from repro.engine.l1 import shard_column_sums
from repro.engine.runtime import SERIAL_RUNTIME, Runtime
from repro.engine.topology import Coordinator, Site

__all__ = ["star_exchange_item_supports"]


def _down_list_task(b: np.ndarray, needed: np.ndarray) -> tuple[dict, int]:
    """Coordinator-side fan-out: column-index lists for one site's items.

    Returns ``(payload, down_bits)``; the bitmap charge (``n_items`` bits
    announcing which items the hub covers) is included in ``down_bits``.
    """
    n_items = b.shape[0]
    payload = {}
    down_bits = n_items  # bitmap announcing which items the hub covers
    for j in np.flatnonzero(needed):
        indices = np.flatnonzero(b[j, :])
        payload[int(j)] = indices
        down_bits += bitcost.bits_for_index_list(indices, max(b.shape[1], 1))
    return payload, down_bits


def _up_list_task(
    shard: np.ndarray,
    b: np.ndarray,
    ship: np.ndarray,
    site_ships: np.ndarray,
    coordinator_ships: np.ndarray,
    row_offset: int,
    total_rows: int,
) -> tuple[dict, int, np.ndarray, np.ndarray]:
    """Site-side fan-out: row-index lists + both shares' local accumulation.

    Returns ``(payload, up_bits, coordinator-share block, site share)`` —
    all the per-site compute of the exchange, so the serial phase only
    sends and assembles.
    """
    payload = {}
    up_bits = 0
    for j in np.flatnonzero(ship):
        indices = np.flatnonzero(shard[:, j])
        payload[int(j)] = row_offset + indices
        up_bits += bitcost.bits_for_index_list(indices, max(total_rows, 1))
    coord_block = shard[:, site_ships] @ b[site_ships, :]
    site_share = shard[:, coordinator_ships] @ b[coordinator_ships, :]
    return payload, up_bits, coord_block, site_share


def star_exchange_item_supports(
    coordinator: Coordinator,
    sites: list[Site],
    shard_subs: list[np.ndarray],
    b: np.ndarray,
    *,
    site_counts: list[np.ndarray] | None = None,
    label_prefix: str = "",
    send_u_counts: bool = True,
    runtime: Runtime | None = None,
) -> tuple[list[np.ndarray], np.ndarray, dict]:
    """Run the index exchange; returns ``(site_shares, c_coord, info)``.

    Parameters
    ----------
    shard_subs:
        The sites' (subsampled) binary shards ``A'_s``, aligned with
        ``sites``.
    b:
        The coordinator's binary matrix of shape ``(n, m2)``.
    site_counts:
        Per-site item counts ``u^s_j`` if the enclosing protocol already
        transmitted them (Algorithm 2 sends per-level column sums for *all*
        levels up front); computed locally otherwise.
    send_u_counts:
        Whether the counts still need to be transmitted; set to False by
        enclosing protocols that already paid for them, to avoid
        double-charging.

    Returns
    -------
    ``site_shares`` is one matrix per site (the site's share of its shard's
    rows of ``C``), ``c_coord`` the coordinator's share over the full global
    row space; ``site_shares`` stacked plus ``c_coord`` equals ``A' B``.

    Per-site list construction and the exchange-level accumulation (both
    shares' local products) fan out through ``runtime``; every send happens
    in the serial phase, in site order, so the transcript is
    executor-invariant.
    """
    runtime = runtime if runtime is not None else SERIAL_RUNTIME
    shard_subs = [np.asarray(shard, dtype=np.int64) for shard in shard_subs]
    b = np.asarray(b, dtype=np.int64)
    if shard_subs[0].shape[1] != b.shape[0]:
        raise ValueError(
            f"inner dimensions differ: {shard_subs[0].shape} vs {b.shape}"
        )
    n_items = b.shape[0]
    total_rows = sum(shard.shape[0] for shard in shard_subs)

    if site_counts is None:
        # For binary shards the per-item counts u^s_j ARE the column sums
        # (Remark 2's mergeable summary, shared across the fan-out paths).
        site_counts = runtime.map(
            shard_column_sums, [(shard,) for shard in shard_subs]
        )
    if send_u_counts:
        for site, shard, u_site in zip(sites, shard_subs, site_counts):
            site.send(
                u_site,
                label=f"{label_prefix}item-counts",
                bits=n_items * bitcost.bits_for_index(max(int(shard.shape[0]) + 1, 2)),
            )

    u = np.sum(site_counts, axis=0)
    v = b.sum(axis=1)
    active = (u > 0) & (v > 0)
    coordinator_ships = active & (u > v)
    site_ships = active & (u <= v)

    # Coordinator -> sites: its column-index lists for items where its side
    # is smaller, sent to the sites whose shards touch the item (plus the
    # per-item bitmap announcing which items it covers).  List construction
    # fans out; sends run serially in site order.
    down_payloads = runtime.map(
        _down_list_task,
        [(b, coordinator_ships & (u_site > 0)) for u_site in site_counts],
    )
    for site, (payload, down_bits) in zip(sites, down_payloads):
        coordinator.send(
            site,
            payload,
            label=f"{label_prefix}coordinator-item-lists",
            bits=down_bits,
        )

    # Sites -> coordinator: their row-index lists for the remaining items.
    # Global row indexing comes from each site's own row_offset (shard_subs
    # must be shape-aligned with the sites' shards).  The exchange-level
    # accumulation — each side's share of the split product — rides in the
    # same fan-out.
    up_payloads = runtime.map(
        _up_list_task,
        [
            (
                shard,
                b,
                site_ships & (u_site > 0),
                site_ships,
                coordinator_ships,
                site.row_offset,
                total_rows,
            )
            for site, shard, u_site in zip(sites, shard_subs, site_counts)
        ],
    )
    c_coord = np.zeros((total_rows, b.shape[1]), dtype=np.int64)
    site_shares = []
    for site, shard, (payload, up_bits, coord_block, site_share) in zip(
        sites, shard_subs, up_payloads
    ):
        site.send(payload, label=f"{label_prefix}site-item-lists", bits=up_bits)

        # Local accumulation: the coordinator owns the items the sites
        # shipped, each site its shard's share of the coordinator's items.
        rows = slice(site.row_offset, site.row_offset + shard.shape[0])
        c_coord[rows] = coord_block
        site_shares.append(site_share)

    info = {
        "u": u,
        "v": v,
        "exchanged_indices": int(np.minimum(u, v)[active].sum()),
        "site_owned_items": int(coordinator_ships.sum()),
        "coordinator_owned_items": int(site_ships.sum()),
    }
    return site_shares, c_coord, info
