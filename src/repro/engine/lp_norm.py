"""Algorithm 1, k sites: two-round (1 + eps)-approximation of ``||A B||_p^p``.

Theorem 3.1 of the paper, lifted to the coordinator model.  Round 1
(downstream): the coordinator broadcasts the shared row sketch ``S B^T``
once.  Round 2 (upstream): every site group-samples its shard's rows —
stratified by shard, then by geometric norm group — and ships the sampled
rows with their inverse sampling weights.  The coordinator computes the
sampled rows of ``C`` exactly and sums the importance-weighted
contributions over all shards.  Each shard's estimate is ``(1 ± eps)`` of
its block's mass, so the sum is ``(1 ± eps)`` of ``||C||_p^p``.

With a single site this *is* the paper's two-party protocol: Bob
(coordinator) sends ``S B^T``, Alice (the site) group-samples all of ``A``,
and Bob finishes — same rounds, same per-message accounting.

Total communication ``O~(n/eps)`` per site — a ``1/eps`` factor better than
the one-round baseline of [16] (see :mod:`repro.baselines.one_round`).
"""

from __future__ import annotations

import math

import numpy as np

from repro.comm import bitcost
from repro.engine.base import StarProtocol
from repro.engine.robust import RobustPolicy, robust_total
from repro.engine.runtime import SERIAL_RUNTIME, Runtime
from repro.engine.topology import Coordinator, Site
from repro.sketch.lp_sketch import make_lp_sketch

__all__ = [
    "StarLpNormProtocol",
    "sample_block_rows",
    "star_lp_pp_estimate",
    "weighted_block_pp",
]


def _assign_groups(row_estimates: np.ndarray, beta: float) -> np.ndarray:
    """Geometric grouping of rows by estimated norm.

    Group ``l`` holds rows with estimate in ``[(1+beta)^l, (1+beta)^{l+1})``;
    rows with estimate in ``(0, 1)`` share group 0 and zero rows get group -1
    (they are never sampled and contribute nothing to the sum).
    """
    group_of = np.full(row_estimates.shape, -1, dtype=np.int64)
    positive = row_estimates > 0
    log_base = math.log1p(beta)
    with np.errstate(divide="ignore"):
        raw = np.floor(np.log(row_estimates[positive]) / log_base)
    group_of[positive] = np.maximum(raw, 0).astype(np.int64)
    return group_of


def _sampling_probabilities(
    row_estimates: np.ndarray,
    group_of: np.ndarray,
    rho: float,
    total_estimate: float,
) -> np.ndarray:
    """Per-row sampling probability ``p_l`` from the paper, capped at 1."""
    probs = np.zeros(row_estimates.shape)
    for group in np.unique(group_of):
        if group < 0:
            continue
        members = group_of == group
        group_mass = float(np.sum(row_estimates[members]))
        group_size = int(np.count_nonzero(members))
        p_l = (rho / group_size) * (group_mass / total_estimate)
        probs[members] = min(1.0, p_l)
    return probs


def sample_block_rows(
    a: np.ndarray,
    row_estimates: np.ndarray,
    *,
    beta: float,
    rho: float,
    rng: np.random.Generator,
    total_rows: int,
    row_offset: int = 0,
) -> tuple[dict, int]:
    """Group-sample the rows of one block of ``A`` (Algorithm 1, round 2).

    One block is one site's shard (the whole matrix in the two-party view),
    identified by ``row_offset``, so the sampling logic and the round-2
    bit-accounting formula exist exactly once.  Returns ``(payload, bits)``;
    the payload's ``rows`` are global row indices.
    """
    block_total = float(np.sum(row_estimates))
    group_of = _assign_groups(row_estimates, beta)
    sample_probs = _sampling_probabilities(row_estimates, group_of, rho, block_total)
    sampled_mask = rng.uniform(size=a.shape[0]) < sample_probs
    sampled_rows = np.flatnonzero(sampled_mask)
    weights = 1.0 / sample_probs[sampled_rows]

    payload = {
        "rows": row_offset + sampled_rows,
        "weights": weights,
        "a_rows": a[sampled_rows],
    }
    is_binary = bool(np.all((a == 0) | (a == 1)))
    per_row_bits = a.shape[1] if is_binary else a.shape[1] * bitcost.INT_ENTRY_BITS
    bits = len(sampled_rows) * (
        per_row_bits + bitcost.bits_for_index(max(total_rows, 1)) + bitcost.FLOAT_BITS
    )
    return payload, bits


def weighted_block_pp(payload: dict, b: np.ndarray, p: float) -> float:
    """Receiver side of :func:`sample_block_rows`: exact importance-weighted
    contribution of one block's sampled rows to ``||A B||_p^p``."""
    if len(payload["rows"]) == 0:
        return 0.0
    sampled_c = payload["a_rows"] @ b
    if p == 0:
        row_pp = np.count_nonzero(sampled_c, axis=1).astype(float)
    else:
        row_pp = np.sum(np.abs(sampled_c.astype(float)) ** p, axis=1)
    return float(np.dot(payload["weights"], row_pp))


def total_rows_of(sites: list[Site]) -> int:
    """Number of rows of the global matrix ``A`` (all shards together)."""
    return sum(np.asarray(site.data).shape[0] for site in sites)


def check_inner_dims(sites: list[Site], b: np.ndarray) -> None:
    """Shards' common column count must match ``B``'s row count."""
    inner = np.asarray(sites[0].data).shape[1]
    if inner != b.shape[0]:
        raise ValueError(
            f"inner dimensions differ: shards have {inner} columns, "
            f"B has {b.shape[0]} rows"
        )


def _round2_site_task(
    rng: np.random.Generator,
    a: np.ndarray,
    sketch,
    sketched_bt: np.ndarray,
    beta: float,
    rho: float,
    total_rows: int,
    row_offset: int,
) -> tuple[tuple[float, dict | None, int], np.random.Generator]:
    """One site's round-2 work (fan-out phase; no network access).

    Sketch-estimates the shard's per-row masses and group-samples the rows,
    drawing only from the site's private ``rng`` (returned advanced, per the
    :meth:`repro.engine.runtime.Runtime.map_sites` contract).  Returns
    ``(site_total, payload-or-None, round2_bits)``.
    """
    a = np.asarray(a)
    c_tilde = a @ sketched_bt.T
    row_estimates = np.maximum(
        np.asarray(sketch.estimate_rows_pp(c_tilde), dtype=float), 0.0
    )
    site_total = float(np.sum(row_estimates))
    if site_total <= 0:
        return (site_total, None, 0), rng
    payload, round2_bits = sample_block_rows(
        a,
        row_estimates,
        beta=beta,
        rho=rho,
        rng=rng,
        total_rows=total_rows,
        row_offset=row_offset,
    )
    return (site_total, payload, round2_bits), rng


def star_lp_pp_estimate(
    coordinator: Coordinator,
    sites: list[Site],
    *,
    p: float,
    epsilon: float,
    rho_constant: float,
    shared_rng: np.random.Generator,
    label_prefix: str = "",
    runtime: Runtime | None = None,
    faults=None,
    robust: RobustPolicy | None = None,
) -> tuple[float, dict]:
    """Run Algorithm 1 over the star; the heavy-hitter protocols reuse it as
    a subroutine on the same network, exactly as Corollary 5.2 prescribes.

    Returns ``(estimate of ||A B||_p^p, details)``.  The estimate ends up in
    the coordinator's hands (it performs the final summation), matching the
    paper's Bob.  Per-site round-2 work fans out through ``runtime``; sends
    and the coordinator's weighted summation stay serial in site order, so
    the transcript is executor-invariant.
    """
    runtime = runtime if runtime is not None else SERIAL_RUNTIME
    b = np.asarray(coordinator.data)
    check_inner_dims(sites, b)
    total_rows = total_rows_of(sites)

    beta = math.sqrt(epsilon)
    rho = rho_constant / epsilon

    # --- Round 1: coordinator -> all sites, the row sketch S B^T -----------
    sketch = make_lp_sketch(b.shape[1], p, beta, shared_rng)
    sketched_bt = sketch.apply(b.T)
    coordinator.broadcast(
        sketched_bt,
        label=f"{label_prefix}round1/sketch-of-B",
        bits=bitcost.bits_for_matrix(sketched_bt),
        sites=sites,
    )

    # --- Round 2: every site -> coordinator, sampled shard rows ------------
    # Fan-out: sketch estimation + group sampling per site (private coins).
    outcomes = runtime.map_sites(
        _round2_site_task,
        sites,
        [
            (site.data, sketch, sketched_bt, beta, rho, total_rows, site.row_offset)
            for site in sites
        ],
    )

    # Serial: sends in site order, coordinator accumulation in site order.
    estimate = 0.0
    rough_total = 0.0
    sampled_total = 0
    site_estimates: list[float] = []
    for site, (site_total, payload, round2_bits) in zip(sites, outcomes):
        rough_total += site_total
        if payload is None:
            site.send(0, label=f"{label_prefix}round2/empty", bits=1)
            contribution = 0.0
        else:
            site.send(
                payload, label=f"{label_prefix}round2/sampled-rows", bits=round2_bits
            )
            # Coordinator: exact norms of the sampled rows of C, weighted sum.
            contribution = weighted_block_pp(payload, b, p)
            estimate += contribution
            sampled_total += int(len(payload["rows"]))
        if faults is not None:
            contribution = float(faults.corrupt(site.name, contribution))
        site_estimates.append(contribution)

    details = {
        "sampled_rows": sampled_total,
        "beta": beta,
        "rho": rho,
        "rough_total": rough_total,
    }
    if faults is not None or robust is not None:
        # Re-aggregate the per-site additive shares through the robust
        # combiner (the plain in-order sum at f = 0), over the possibly
        # corrupted uploads.
        policy = robust if robust is not None else RobustPolicy(0)
        estimate = float(robust_total(site_estimates, policy))
        details["site_estimates"] = site_estimates
        if robust is not None:
            details["robust"] = {"f": policy.f, "strategy": policy.strategy}
        if faults is not None:
            present = {site.name for site in sites}
            details["faults"] = {
                name: kind
                for name, kind in faults.describe().items()
                if name in present
            }
    return estimate, details


class StarLpNormProtocol(StarProtocol):
    """Two-round (1 + eps)-approximation of ``||A B||_p^p``, ``p in [0, 2]``.

    Parameters
    ----------
    p:
        Norm parameter in ``[0, 2]`` (``p = 0`` counts non-zero entries).
    epsilon:
        Target relative accuracy.
    rho_constant:
        Oversampling constant: ``rho = rho_constant / epsilon`` rows are
        sampled in expectation per block.  The paper uses ``10^4``; the
        default here is laptop-scale and can be raised for tighter estimates.
    seed:
        Randomness seed (shared + private coins).
    """

    name = "lp-norm-two-round"
    renormalizes_on_dropout = True

    def __init__(
        self,
        p: float,
        epsilon: float,
        *,
        rho_constant: float = 48.0,
        seed: int | None = None,
        robust: "RobustPolicy | int | None" = None,
    ) -> None:
        super().__init__(seed=seed)
        if not 0 <= p <= 2:
            raise ValueError(f"p must be in [0, 2], got {p}")
        if not 0 < epsilon <= 1:
            raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
        if rho_constant <= 0:
            raise ValueError("rho_constant must be positive")
        self.p = float(p)
        self.epsilon = float(epsilon)
        self.rho_constant = float(rho_constant)
        self.robust = RobustPolicy.coerce(robust)

    def _execute(self, coordinator: Coordinator, sites: list[Site]):
        return star_lp_pp_estimate(
            coordinator,
            sites,
            p=self.p,
            epsilon=self.epsilon,
            rho_constant=self.rho_constant,
            shared_rng=self.shared_rng,
            runtime=self.runtime,
            faults=self.conditions.faults if self.conditions is not None else None,
            robust=self.robust,
        )
