"""Byzantine-robust aggregation: trimmed/median merges and fault injection.

The engine's merge contract (:mod:`repro.sketch.mergeable`) sums per-site
summaries entrywise, which is exactly right when every site is honest and
exactly wrong when even one is not: a single corrupt summary shifts the
plain merge by an unbounded amount.  This module ports the approximate-
consensus machinery referenced by the roadmap (proceed once n−f responses
arrive; discard the f most extreme values before averaging) onto the
engine's additive families.

Robust combination
------------------
All estimators here operate on a stack of **per-site contributions** —
one scalar (the site's additive share of an lp mass), one vector (Remark-2
column sums), or one sketch state array per site — and tolerate up to
``f`` arbitrarily corrupted contributions:

:func:`trimmed_mean`
    Sort the k contributions coordinatewise, discard the ``f`` smallest
    and ``f`` largest, average the rest.  With at most ``f`` corrupt
    inputs every surviving value lies inside the honest range, so the
    result is within ``[min, max]`` of the honest contributions
    (requires ``k > 2f``).
:func:`median_of_sites`
    The coordinatewise median — the ``f = floor((k-1)/2)`` extreme of
    trimming, robust to any minority of corrupt sites.

Because the clean aggregate is the **sum** of contributions while both
estimators approximate their **mean**, :func:`robust_total` rescales by k.
The price of robustness is an error floor set by cross-site imbalance:
:func:`robust_error_bound` returns the worst-case deviation
``k * (max - min)`` of the honest contributions, the bound charted by
experiment e17 and pinned by the property tests.  At ``f = 0`` both
:func:`robust_total` and :func:`robust_merge_states` reduce to the plain
in-order sum, bit for bit.

Fault injection
---------------
:class:`FaultPlan` is the declarative, seeded corruption injector threaded
through :class:`repro.comm.conditions.NetworkConditions`: it maps site
names to :class:`Adversary` behaviours (``flip-sign``, ``scale``,
``garbage``, ``stale-replay``) and corrupts a site's contribution as a
pure function of ``(seed, site, round)`` — the same plan replays the same
attack, so every fault scenario is a reproducible experimental condition.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

__all__ = [
    "ADVERSARY_KINDS",
    "Adversary",
    "FaultPlan",
    "RobustPolicy",
    "STRATEGIES",
    "median_of_sites",
    "robust_error_bound",
    "robust_merge_states",
    "robust_total",
    "trimmed_mean",
]

#: Supported robust combination strategies.
STRATEGIES = ("trimmed-mean", "median")

#: Supported adversary behaviours.
ADVERSARY_KINDS = ("flip-sign", "scale", "garbage", "stale-replay")


# --------------------------------------------------------------------- policy
@dataclass(frozen=True)
class RobustPolicy:
    """How many corrupt sites to tolerate, and with which estimator.

    Parameters
    ----------
    f:
        Number of arbitrarily corrupted per-site contributions to
        tolerate.  ``f = 0`` disables trimming entirely (plain merge).
    strategy:
        ``"trimmed-mean"`` (default) or ``"median"``.
    """

    f: int = 0
    strategy: str = "trimmed-mean"

    def __post_init__(self) -> None:
        if self.f < 0:
            raise ValueError(f"f must be >= 0, got {self.f}")
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"strategy must be one of {STRATEGIES}, got {self.strategy!r}"
            )

    @classmethod
    def coerce(cls, value: "RobustPolicy | int | None") -> "RobustPolicy | None":
        """Accept a policy, a bare ``f`` (trimmed-mean), or ``None``."""
        if value is None or isinstance(value, RobustPolicy):
            return value
        return cls(f=int(value))

    def check_sites(self, k: int) -> None:
        """Raise unless k contributions support this policy."""
        if self.f > 0 and k <= 2 * self.f:
            raise ValueError(
                f"robust aggregation with f={self.f} needs more than "
                f"{2 * self.f} contributing sites, got {k}"
            )


# ----------------------------------------------------------------- estimators
def _stack(values: Sequence[Any]) -> np.ndarray:
    if len(values) == 0:
        raise ValueError("need at least one per-site contribution")
    return np.stack([np.asarray(v, dtype=float) for v in values], axis=0)


def _plain_sum(values: Sequence[Any]) -> np.ndarray | float:
    """In-order sum over sites — bit-identical to the serial merge loop."""
    total = np.asarray(values[0], dtype=float).copy()
    for value in values[1:]:
        total += np.asarray(value, dtype=float)
    return total if total.ndim else float(total)


def trimmed_mean(values: Sequence[Any], f: int) -> np.ndarray | float:
    """Coordinatewise mean after discarding the f smallest and f largest.

    Requires ``len(values) > 2f`` so at least one value survives the trim.
    With at most f corrupted inputs the result lies within the range of the
    honest inputs (coordinatewise).
    """
    stacked = _stack(values)
    if f < 0:
        raise ValueError(f"f must be >= 0, got {f}")
    if stacked.shape[0] <= 2 * f:
        raise ValueError(
            f"trimmed mean with f={f} needs more than {2 * f} values, "
            f"got {stacked.shape[0]}"
        )
    if f > 0:
        stacked = np.sort(stacked, axis=0)[f : stacked.shape[0] - f]
    result = stacked.mean(axis=0)
    return result if result.ndim else float(result)


def median_of_sites(values: Sequence[Any]) -> np.ndarray | float:
    """Coordinatewise median over per-site contributions."""
    result = np.median(_stack(values), axis=0)
    return result if result.ndim else float(result)


def robust_total(
    values: Sequence[Any], policy: RobustPolicy | int
) -> np.ndarray | float:
    """Robust estimate of the **sum** of k per-site contributions.

    Estimates the per-site mean with the policy's strategy and rescales by
    k — under at most ``policy.f`` corrupted contributions the result is
    within :func:`robust_error_bound` of the clean sum.  At ``f = 0`` this
    *is* the plain in-order sum, bit for bit, so robust and plain paths
    coincide exactly when no tolerance is requested.
    """
    policy = RobustPolicy.coerce(policy)
    if policy.f == 0 and policy.strategy == "trimmed-mean":
        return _plain_sum(values)
    k = len(values)
    policy.check_sites(k)
    if policy.strategy == "median":
        center = median_of_sites(values)
    else:
        center = trimmed_mean(values, policy.f)
    return center * k if isinstance(center, np.ndarray) else float(center * k)


def robust_merge_states(
    states: Sequence[np.ndarray], policy: RobustPolicy | int
) -> np.ndarray:
    """Coordinatewise robust merge of per-site sketch state arrays.

    The plain merged state is the entrywise sum of per-site states
    (:mod:`repro.sketch.mergeable`); this replaces the sum with
    :func:`robust_total` per coordinate, yielding a state a corrupt
    minority cannot displace beyond the honest per-coordinate range.
    """
    policy = RobustPolicy.coerce(policy)
    if policy.f == 0 and policy.strategy == "trimmed-mean":
        return np.asarray(_plain_sum(states))
    shapes = {np.asarray(s).shape for s in states}
    if len(shapes) != 1:
        raise ValueError(f"site states differ in shape: {sorted(shapes)}")
    return np.asarray(robust_total(states, policy))


def robust_error_bound(clean_values: Sequence[Any], f: int) -> np.ndarray | float:
    """Worst-case deviation of a robust total from the clean sum.

    For k honest contributions with at most ``f`` of them replaced by
    arbitrary values, both the trimmed-mean and the median estimate of the
    per-site mean land inside the honest range ``[min, max]`` — and so does
    the honest mean itself.  Rescaled by k, the robust total therefore
    differs from the clean sum by at most ``k * (max - min)``
    (coordinatewise for vector contributions).  This is the bound e17
    charts and the property suite enforces.
    """
    stacked = _stack(clean_values)
    bound = stacked.shape[0] * (stacked.max(axis=0) - stacked.min(axis=0))
    return bound if isinstance(bound, np.ndarray) and bound.ndim else float(bound)


# ------------------------------------------------------------------ adversary
@dataclass(frozen=True)
class Adversary:
    """One site's corruption behaviour.

    Kinds
    -----
    ``flip-sign``
        Negate the contribution (a maximally misleading additive share).
    ``scale``
        Multiply by ``factor`` (default 100: an inflation attack).
    ``garbage``
        Replace with uniform noise of the same shape, magnitude ``factor``
        times the honest contribution's — seeded per (plan, site, round).
    ``stale-replay``
        Replay the site's previous honest contribution (zeros on the first
        round), the classic stuck/replayed-summary failure.
    """

    kind: str
    factor: float = 100.0

    def __post_init__(self) -> None:
        if self.kind not in ADVERSARY_KINDS:
            raise ValueError(
                f"adversary kind must be one of {ADVERSARY_KINDS}, got {self.kind!r}"
            )

    def apply(
        self, value: Any, rng: np.random.Generator, previous: Any | None
    ) -> np.ndarray | float:
        arr = np.asarray(value, dtype=float)
        if self.kind == "flip-sign":
            out = -arr
        elif self.kind == "scale":
            out = arr * self.factor
        elif self.kind == "garbage":
            magnitude = float(np.max(np.abs(arr))) if arr.size else 1.0
            magnitude = max(magnitude, 1.0) * self.factor
            out = rng.uniform(-magnitude, magnitude, size=arr.shape)
        else:  # stale-replay
            out = (
                np.zeros_like(arr)
                if previous is None
                else np.asarray(previous, dtype=float)
            )
        return out if out.ndim else float(out)


def _coerce_adversary(spec: "Adversary | str | tuple") -> Adversary:
    if isinstance(spec, Adversary):
        return spec
    if isinstance(spec, str):
        return Adversary(spec)
    if isinstance(spec, tuple) and len(spec) == 2:
        return Adversary(str(spec[0]), float(spec[1]))
    raise TypeError(
        f"adversary spec must be an Adversary, a kind string, or a "
        f"(kind, factor) pair, got {spec!r}"
    )


class FaultPlan:
    """A declarative, seeded corruption scenario: site name → adversary.

    Thread a plan through :class:`repro.comm.conditions.NetworkConditions`
    (``NetworkConditions(faults=plan)``) and the engine corrupts each named
    site's uploaded contribution before the coordinator merges it.  The
    ``garbage`` adversary's noise is a pure function of
    ``(seed, site, round)``, so a plan replays identically; ``stale-replay``
    remembers the last honest contribution per site, which a fresh plan (or
    :meth:`reset`) forgets.

    Examples
    --------
    >>> plan = FaultPlan({"site-0": "flip-sign", "site-3": ("scale", 10.0)})
    >>> plan.corrupt("site-0", 5.0)
    -5.0
    >>> plan.corrupt("site-1", 5.0)  # honest sites pass through untouched
    5.0
    """

    def __init__(
        self,
        adversaries: Mapping[str, "Adversary | str | tuple"],
        *,
        seed: int = 0,
    ) -> None:
        self.adversaries = {
            str(name): _coerce_adversary(spec) for name, spec in adversaries.items()
        }
        self.seed = int(seed)
        self._history: dict[str, np.ndarray | float] = {}

    @property
    def corrupt_sites(self) -> frozenset[str]:
        return frozenset(self.adversaries)

    def adversary(self, site_name: str) -> Adversary | None:
        return self.adversaries.get(site_name)

    def corrupt(
        self,
        site_name: str,
        value: Any,
        round_index: int = 0,
        channel: str | None = None,
    ) -> Any:
        """Corrupt one contribution (honest sites pass through unchanged).

        ``channel`` separates independent streams from the same site (the
        streaming session corrupts one sketch family per channel): replay
        history and garbage noise are keyed per ``(site, channel)``.
        """
        adversary = self.adversaries.get(site_name)
        key = site_name if channel is None else f"{site_name}/{channel}"
        previous = self._history.get(key)
        if adversary is not None and adversary.kind == "stale-replay":
            self._history[key] = np.array(value, dtype=float, copy=True)
        if adversary is None:
            return value
        entropy = [self.seed, zlib.crc32(key.encode()), int(round_index)]
        rng = np.random.default_rng(np.random.SeedSequence(entropy))
        return adversary.apply(value, rng, previous)

    def reset(self) -> None:
        """Forget stale-replay history (start the scenario over)."""
        self._history.clear()

    def describe(self) -> dict[str, str]:
        """Compact site → kind mapping for protocol detail reports."""
        return {name: adv.kind for name, adv in sorted(self.adversaries.items())}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"FaultPlan({self.describe()}, seed={self.seed})"
