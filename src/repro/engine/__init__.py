"""Topology-agnostic protocol engine.

One implementation per protocol family, parameterized by the number of
sites k.  The paper's two-party protocols are exactly the ``k = 1`` special
case (Alice is the single site, Bob the coordinator), which is how the
facades in :mod:`repro.core` run them; the k-site coordinator runtime in
:mod:`repro.multiparty` runs the same bodies over a wider star.

Layout
------
``repro.engine.topology``
    :class:`Site` / :class:`Coordinator` endpoints and the
    :class:`StarTopology` wiring (network + endpoints + seeded randomness).
``repro.engine.base``
    The :class:`StarProtocol` driver (``run`` for k shards,
    ``run_two_party`` for the Alice/Bob view) and the cost reports.
``repro.engine.lp_norm`` / ``l0_sampling`` / ``l1`` / ``linf`` /
``heavy_hitters``
    The protocol families (Algorithms 1-4, Remarks 2-3, Theorems 3.2, 4.1,
    4.3, 4.8, 5.1, 5.3 — all lifted to k sites).
``repro.engine.exchange``
    The star per-item index-exchange primitive shared by the ``l_inf`` and
    binary heavy-hitter protocols.
``repro.engine.api``
    :class:`EstimatorBase`, the query dispatch shared by
    :class:`repro.core.api.MatrixProductEstimator` and
    :class:`repro.multiparty.estimator.ClusterEstimator`.
``repro.engine.runtime``
    :class:`Runtime`, the message-passing execution layer: pluggable
    per-site executors (``serial``/``threads``/``processes``) with a
    serial-equivalence guarantee, plus the dropout policies applied when
    network conditions declare sites dropped.
``repro.engine.streaming``
    :class:`StreamingSession`, the continuous-monitoring runtime: batched
    turnstile ingestion over epochs, serialized sketch deltas metered in
    real wire bytes, configurable refresh policies, and live estimates
    between syncs.
"""

from repro.engine.base import ClusterCostReport, StarProtocol
from repro.engine.heavy_hitters import (
    StarBinaryHeavyHittersProtocol,
    StarHeavyHittersProtocol,
)
from repro.engine.l0_sampling import StarL0SamplingProtocol
from repro.engine.l1 import StarExactL1Protocol, StarL1SamplingProtocol
from repro.engine.linf import (
    StarGeneralMatrixLinfProtocol,
    StarKappaApproxLinfProtocol,
    StarTwoPlusEpsilonLinfProtocol,
)
from repro.engine.lp_norm import StarLpNormProtocol, star_lp_pp_estimate
from repro.engine.robust import Adversary, FaultPlan, RobustPolicy
from repro.engine.runtime import QuorumPolicy, Runtime, SiteDroppedError
from repro.engine.streaming import EpochReport, StreamingSession
from repro.engine.topology import (
    Aggregator,
    Coordinator,
    Site,
    StarTopology,
    TreeTopology,
    coerce_shards,
    normalize_tree,
)

__all__ = [
    "Adversary",
    "Aggregator",
    "ClusterCostReport",
    "EpochReport",
    "FaultPlan",
    "QuorumPolicy",
    "RobustPolicy",
    "Runtime",
    "SiteDroppedError",
    "StreamingSession",
    "Coordinator",
    "Site",
    "StarProtocol",
    "StarTopology",
    "TreeTopology",
    "StarBinaryHeavyHittersProtocol",
    "StarExactL1Protocol",
    "StarGeneralMatrixLinfProtocol",
    "StarHeavyHittersProtocol",
    "StarKappaApproxLinfProtocol",
    "StarL0SamplingProtocol",
    "StarL1SamplingProtocol",
    "StarLpNormProtocol",
    "StarTwoPlusEpsilonLinfProtocol",
    "coerce_shards",
    "normalize_tree",
    "star_lp_pp_estimate",
]
