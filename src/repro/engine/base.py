"""The engine's protocol driver and its cost reports.

A :class:`StarProtocol` is one protocol family written once against
:class:`~repro.engine.topology.Coordinator` / ``Site`` endpoints and
parameterized by the number of sites k.  It can be executed two ways:

* :meth:`StarProtocol.run` — the k-site coordinator model.  Takes a list of
  row-shards plus the coordinator's matrix and reports a
  :class:`ClusterCostReport` (per-site, per-link and aggregate meters).
* :meth:`StarProtocol.run_two_party` — the paper's two-party model, i.e.
  the ``k = 1`` star with the single site named ``"alice"`` and the hub
  named ``"bob"``.  Reports a classic
  :class:`repro.comm.protocol.CostReport`.

Both views share one seeding discipline (see
:meth:`repro.engine.topology.StarTopology.build`), so a two-party run is
bit-for-bit the single-shard cluster run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.comm.network import Network
from repro.comm.protocol import CostReport, ProtocolResult, split_protocol_output
from repro.engine.topology import Coordinator, Site, StarTopology

__all__ = ["ClusterCostReport", "StarProtocol", "two_party_cost"]


@dataclass
class ClusterCostReport:
    """Communication cost of one k-party protocol execution.

    Mirrors :class:`repro.comm.protocol.CostReport` with the star-specific
    quantities: per-site upload volumes, per-link loads, and the busiest
    link (which bounds the makespan when links transfer in parallel).
    """

    total_bits: int
    rounds: int
    coordinator_bits: int
    site_bits: dict[str, int] = field(default_factory=dict)
    link_bits: dict[str, int] = field(default_factory=dict)
    max_link_bits: int = 0
    breakdown: dict[str, int] = field(default_factory=dict)
    per_round: dict[int, int] = field(default_factory=dict)

    @classmethod
    def from_network(cls, network: Network) -> "ClusterCostReport":
        return cls(
            total_bits=network.total_bits,
            rounds=network.rounds,
            coordinator_bits=network.bits_sent_by(network.coordinator_name),
            site_bits={name: network.bits_sent_by(name) for name in network.site_names},
            link_bits=network.link_bits(),
            max_link_bits=network.max_link_bits,
            breakdown=network.bits_by_label(),
            per_round=network.bits_per_round(),
        )


def two_party_cost(network: Network, alice_name: str, bob_name: str) -> CostReport:
    """Collapse a one-leaf star's meters into a two-party cost report."""
    return CostReport(
        total_bits=network.total_bits,
        rounds=network.rounds,
        alice_bits=network.bits_sent_by(alice_name),
        bob_bits=network.bits_sent_by(bob_name),
        breakdown=network.bits_by_label(),
    )


class StarProtocol:
    """Base driver for the engine's protocol families.

    Subclasses implement :meth:`_execute` on fully wired
    :class:`~repro.engine.topology.Coordinator` / ``Site`` endpoints; the
    drivers handle topology construction, seeding and cost reporting.
    """

    #: Human-readable protocol name (used in benchmark tables).
    name = "star-protocol"

    def __init__(self, *, seed: int | None = None) -> None:
        self.seed = seed

    # ------------------------------------------------------------------ api
    def run(self, shards: list[Any], coordinator_data: Any) -> ProtocolResult:
        """Execute the protocol on k row-shards and the coordinator's matrix."""
        topology = StarTopology.build(shards, coordinator_data, seed=self.seed)
        value, details = self._run_on(topology)
        details.setdefault("num_sites", topology.num_sites)
        return ProtocolResult(
            value=value,
            cost=ClusterCostReport.from_network(topology.network),
            details=details,
        )

    def run_two_party(self, alice_data: Any, bob_data: Any) -> ProtocolResult:
        """Execute the protocol in the two-party model (one site = Alice)."""
        topology = StarTopology.build(
            [alice_data],
            bob_data,
            seed=self.seed,
            site_names=("alice",),
            coordinator_name="bob",
        )
        value, details = self._run_on(topology)
        return ProtocolResult(
            value=value,
            cost=two_party_cost(topology.network, "alice", "bob"),
            details=details,
        )

    def _run_on(self, topology: StarTopology) -> tuple[Any, dict]:
        self.shared_rng = topology.shared_rng
        output = self._execute(topology.coordinator, topology.sites)
        return split_protocol_output(output)

    # ------------------------------------------------------------- subclass
    def _execute(self, coordinator: Coordinator, sites: list[Site]) -> Any:
        raise NotImplementedError
