"""The engine's protocol driver and its cost reports.

A :class:`StarProtocol` is one protocol family written once against
:class:`~repro.engine.topology.Coordinator` / ``Site`` endpoints and
parameterized by the number of sites k.  It can be executed two ways:

* :meth:`StarProtocol.run` — the k-site coordinator model.  Takes a list of
  row-shards plus the coordinator's matrix and reports a
  :class:`ClusterCostReport` (per-site, per-link and aggregate meters).
* :meth:`StarProtocol.run_two_party` — the paper's two-party model, i.e.
  the ``k = 1`` star with the single site named ``"alice"`` and the hub
  named ``"bob"``.  Reports a classic
  :class:`repro.comm.protocol.CostReport`.

Both views share one seeding discipline (see
:meth:`repro.engine.topology.StarTopology.build`), so a two-party run is
bit-for-bit the single-shard cluster run.

Both drivers accept an optional :class:`repro.engine.runtime.Runtime`
(per-site executor + dropout policy) and :class:`repro.comm.conditions
.NetworkConditions` (per-link timing models + dropped sites).  The default
serial runtime over ideal links reproduces every historical transcript
bit for bit; non-default conditions add a simulated makespan to the cost
report and may declare sites dropped, which the runtime's dropout policy
resolves (fail, or exclude-with-renormalization — see
:mod:`repro.engine.runtime`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.comm.conditions import NetworkConditions
from repro.comm.network import Network
from repro.comm.protocol import CostReport, ProtocolResult, split_protocol_output
from repro.comm.transport import Transport
from repro.comm.tree import TreeSpec
from repro.engine.runtime import SERIAL_RUNTIME, Runtime
from repro.engine.topology import (
    Coordinator,
    Site,
    StarTopology,
    TreeTopology,
    normalize_tree,
)

__all__ = ["ClusterCostReport", "StarProtocol", "two_party_cost"]


@dataclass
class ClusterCostReport:
    """Communication cost of one k-party protocol execution.

    Mirrors :class:`repro.comm.protocol.CostReport` with the star-specific
    quantities: per-site upload volumes, per-link loads, and the busiest
    link.  ``max_link_bits`` alone does *not* bound the end-to-end time —
    latency and per-round synchronization do too — which is what the
    simulated ``makespan`` measures: the critical-path seconds over rounds
    (links transfer in parallel within a round) under the network's
    :class:`~repro.comm.conditions.NetworkConditions`.  ``makespan_per_round``
    aligns with ``per_round`` (same 1-based round keys); both are zero
    under the default ideal links.
    """

    total_bits: int
    rounds: int
    coordinator_bits: int
    site_bits: dict[str, int] = field(default_factory=dict)
    link_bits: dict[str, int] = field(default_factory=dict)
    max_link_bits: int = 0
    breakdown: dict[str, int] = field(default_factory=dict)
    per_round: dict[int, int] = field(default_factory=dict)
    makespan: float = 0.0
    makespan_per_round: dict[int, float] = field(default_factory=dict)

    @classmethod
    def from_network(cls, network: Network) -> "ClusterCostReport":
        makespan, makespan_per_round = network.simulate()
        return cls(
            total_bits=network.total_bits,
            rounds=network.rounds,
            coordinator_bits=network.bits_sent_by(network.coordinator_name),
            site_bits={name: network.bits_sent_by(name) for name in network.site_names},
            link_bits=network.link_bits(),
            max_link_bits=network.max_link_bits,
            breakdown=network.bits_by_label(),
            per_round=network.bits_per_round(),
            makespan=makespan,
            makespan_per_round=makespan_per_round,
        )


def two_party_cost(network: Network, alice_name: str, bob_name: str) -> CostReport:
    """Collapse a one-leaf star's meters into a two-party cost report."""
    return CostReport(
        total_bits=network.total_bits,
        rounds=network.rounds,
        alice_bits=network.bits_sent_by(alice_name),
        bob_bits=network.bits_sent_by(bob_name),
        breakdown=network.bits_by_label(),
        makespan=network.simulate()[0],
    )


class StarProtocol:
    """Base driver for the engine's protocol families.

    Subclasses implement :meth:`_execute` on fully wired
    :class:`~repro.engine.topology.Coordinator` / ``Site`` endpoints; the
    drivers handle topology construction, seeding, runtime/fault handling
    and cost reporting.  During :meth:`_execute` the active
    :class:`~repro.engine.runtime.Runtime` is available as ``self.runtime``
    (protocol bodies fan their per-site phases out through it).
    """

    #: Human-readable protocol name (used in benchmark tables).
    name = "star-protocol"

    #: Whether the protocol's output is an additive mass over row-shards
    #: (mergeable-summary semantics).  Such outputs are renormalized by the
    #: inverse surviving row fraction under the "exclude" dropout policy.
    renormalizes_on_dropout = False

    def __init__(self, *, seed: int | None = None) -> None:
        self.seed = seed
        self.runtime: Runtime = SERIAL_RUNTIME
        self.conditions: NetworkConditions | None = None

    # ------------------------------------------------------------------ api
    def run(
        self,
        shards: list[Any],
        coordinator_data: Any,
        *,
        runtime: Runtime | None = None,
        conditions: NetworkConditions | None = None,
        transport: Transport | None = None,
        tree: "TreeSpec | int | None" = None,
    ) -> ProtocolResult:
        """Execute the protocol on k row-shards and the coordinator's matrix.

        ``tree`` selects a hierarchical aggregation overlay — a
        :class:`~repro.comm.tree.TreeSpec` over the generated site names,
        or an integer fan-out (balanced tree) — routing and partially
        merging the very same transcript through interior aggregators.
        The protocol body and the seeding are untouched, so the estimate
        is bit-identical to the flat star; only metering, makespan and the
        aggregation wall-clock change.  Dropout/quorum exclusions prune
        the tree to the surviving subtree, and a *dropped aggregator name*
        declares its whole region dropped (every leaf below it).
        """
        self.runtime = runtime if runtime is not None else SERIAL_RUNTIME
        self.conditions = conditions
        # Validation/coercion happens once, inside StarTopology.build; here
        # only the shard count and row counts are needed.
        shards = list(shards)
        site_names = [f"site-{i}" for i in range(len(shards))]
        spec = normalize_tree(tree, site_names)
        shards, site_names, dropout_details = self._apply_dropout(
            shards, site_names, conditions, tree=spec
        )
        if dropout_details is not None and dropout_details.get("stragglers"):
            # Stragglers keep their link overrides but leave the sub-star,
            # exactly like pre-declared dropped sites.
            conditions = conditions.excluding(dropout_details["stragglers"])
        if spec is None:
            topology: StarTopology = StarTopology.build(
                shards,
                coordinator_data,
                seed=self.seed,
                site_names=site_names,
                conditions=conditions,
                transport=transport,
            )
        else:
            if len(site_names) != len(spec.site_names):
                spec = spec.restrict(site_names)
            topology = TreeTopology.build_tree(
                shards,
                coordinator_data,
                tree=spec,
                seed=self.seed,
                site_names=site_names,
                conditions=conditions,
                transport=transport,
                merge_runtime=self.runtime,
            )
        value, details = self._run_on(topology)
        details.setdefault("num_sites", topology.num_sites)
        if spec is not None:
            details["tree"] = spec.describe()
        if dropout_details is not None:
            if self.renormalizes_on_dropout:
                value = value * dropout_details["renormalization"]
                dropout_details["renormalized"] = True
            details["dropout"] = dropout_details
        return ProtocolResult(
            value=value,
            cost=ClusterCostReport.from_network(topology.network),
            details=details,
        )

    def run_two_party(
        self,
        alice_data: Any,
        bob_data: Any,
        *,
        runtime: Runtime | None = None,
        conditions: NetworkConditions | None = None,
        transport: Transport | None = None,
    ) -> ProtocolResult:
        """Execute the protocol in the two-party model (one site = Alice).

        Dropping the single site leaves no survivors, so a dropped
        ``"alice"`` raises :class:`~repro.engine.runtime.SiteDroppedError`
        under *either* dropout policy.
        """
        self.runtime = runtime if runtime is not None else SERIAL_RUNTIME
        self.conditions = conditions
        if conditions is not None:
            self.runtime.partition_dropped(["alice"], conditions.dropped)
        topology = StarTopology.build(
            [alice_data],
            bob_data,
            seed=self.seed,
            site_names=("alice",),
            coordinator_name="bob",
            conditions=conditions,
            transport=transport,
        )
        value, details = self._run_on(topology)
        return ProtocolResult(
            value=value,
            cost=two_party_cost(topology.network, "alice", "bob"),
            details=details,
        )

    # --------------------------------------------------------------- faults
    def _apply_dropout(
        self,
        shards: list[np.ndarray],
        site_names: Sequence[str],
        conditions: NetworkConditions | None,
        tree: TreeSpec | None = None,
    ) -> tuple[list[np.ndarray], list[str], dict | None]:
        """Resolve dropped sites per the runtime's policy.

        Under ``"exclude"`` the protocol runs over the surviving sub-cluster
        (global row indices then refer to the survivors' concatenation); the
        returned details record who contributed and the renormalization
        factor (inverse surviving row fraction) applied to additive-mass
        outputs.

        A quorum-mode runtime (``Runtime(quorum=(n, f))``) additionally
        excludes *stragglers* — survivors beyond the fastest ``n - f``
        responders under the conditions' latencies and deadline — reusing
        the same survivor renormalization, so quorum answers carry explicit
        contributor sets (``details["quorum"]``) and target the full mass.
        """
        dropped_names = conditions.dropped if conditions is not None else frozenset()
        if tree is not None and dropped_names:
            # Regional dropout: a dropped *aggregator* name declares every
            # leaf of its subtree dropped (rack/region failure), on top of
            # any individually dropped sites.
            expanded = set(dropped_names)
            for name in dropped_names:
                if name in tree.children:
                    expanded.update(tree.subtree_sites(name))
            dropped_names = frozenset(expanded - set(tree.children))
        surviving, dropped = self.runtime.partition_dropped(site_names, dropped_names)
        surviving_names = [site_names[i] for i in surviving]
        in_quorum, stragglers, quorum_details = self.runtime.partition_quorum(
            surviving_names, conditions, tree=tree
        )
        kept_indices = [surviving[i] for i in in_quorum]
        if not dropped and not stragglers:
            return list(shards), list(site_names), None
        total_rows = sum(int(np.asarray(shard).shape[0]) for shard in shards)
        kept_shards = [shards[i] for i in kept_indices]
        kept_names = [site_names[i] for i in kept_indices]
        surviving_rows = sum(int(np.asarray(shard).shape[0]) for shard in kept_shards)
        details = {
            "policy": self.runtime.dropout,
            "dropped_sites": dropped,
            "contributing_sites": kept_names,
            "surviving_row_fraction": surviving_rows / max(total_rows, 1),
            "renormalization": total_rows / max(surviving_rows, 1),
            "renormalized": False,
        }
        if quorum_details is not None:
            details["quorum"] = quorum_details
            details["stragglers"] = stragglers
        return kept_shards, kept_names, details

    def _run_on(self, topology: StarTopology) -> tuple[Any, dict]:
        self.shared_rng = topology.shared_rng
        output = self._execute(topology.coordinator, topology.sites)
        return split_protocol_output(output)

    # ------------------------------------------------------------- subclass
    def _execute(self, coordinator: Coordinator, sites: list[Site]) -> Any:
        raise NotImplementedError
