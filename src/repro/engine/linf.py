"""Algorithms 2-3 and Theorem 4.8, k sites: estimating ``||A B||_inf``.

Algorithm 2 (Theorem 4.1) gives a ``(2 + eps)``-approximation in 3 rounds
and ``O~(n^{1.5}/eps)`` bits for binary matrices; Algorithm 3 (Theorem 4.3)
a ``kappa``-approximation for ``kappa in [4, n]`` in ``O(1)`` rounds and
``O~(n^{1.5}/kappa)`` bits.  Both share the same skeleton, lifted to the
star:

1. *Down-scaling by sampling.*  Every site subsamples the 1-entries of its
   shard at geometrically decreasing rates ``p_l`` to obtain nested
   matrices ``A^l``.  Per-level column sums are mergeable, so each site
   ships its level column-sum stack (Remark 2 applied per level per shard);
   the coordinator merges them, computes ``||A^l B||_1`` per level, selects
   the first level ``l*`` below the threshold and broadcasts it.

2. *Per-item index exchange*
   (:func:`repro.engine.exchange.star_exchange_item_supports`): the
   endpoints obtain an additive split of ``A^{l*} B``.

3. The output is the maximum entry over all shares, rescaled by
   ``1/p_{l*}`` — within a factor 2 because a single entry is split across
   at most two shares, and within ``(1 + eps)`` of ``||C||_inf`` after
   rescaling because the sampling preserves large entries (Lemma 4.2).

Algorithm 3 additionally applies *universe sampling* (each shared item is
kept with probability ``q = min(alpha/kappa, 1)``) before the level search.
The kept-item mask must be common to all sites, so with several sites it is
drawn from the shared public-coin stream; with a single site it stays on
the site's private stream, exactly like the two-party protocol's Alice.

Theorem 4.8(1) (general integer matrices) is the one-round blocked-AMS
sketch: the shared block-diagonal sign sketch is linear over the global
rows, so per-site partial images merge entrywise at the coordinator.
"""

from __future__ import annotations

import math

import numpy as np

from repro.comm import bitcost
from repro.engine.base import StarProtocol
from repro.engine.exchange import star_exchange_item_supports
from repro.engine.l1 import shard_column_sums
from repro.engine.lp_norm import check_inner_dims, total_rows_of
from repro.engine.runtime import Runtime
from repro.engine.topology import Coordinator, Site

__all__ = [
    "StarGeneralMatrixLinfProtocol",
    "StarKappaApproxLinfProtocol",
    "StarTwoPlusEpsilonLinfProtocol",
]


def _require_binary(matrix: np.ndarray, who: str) -> np.ndarray:
    matrix = np.asarray(matrix)
    if not np.all((matrix == 0) | (matrix == 1)):
        raise ValueError(f"{who}'s matrix must be binary for this protocol")
    return matrix.astype(np.int64)


def _pair_column_sums(
    shard: np.ndarray, shard_prime: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Column sums of one shard and its universe-sampled companion."""
    return shard_column_sums(shard), shard_column_sums(shard_prime)


def _blocked_sketch_task(sketch_block: np.ndarray, shard: np.ndarray) -> np.ndarray:
    """One site's partial image of the shared block-diagonal sign sketch."""
    return sketch_block @ shard.astype(float)


def _universe_mask_rng(sites: list[Site], shared_rng: np.random.Generator):
    """The stream that draws item-sampling masks all sites must agree on.

    With one site no coordination is needed, so the mask stays on the
    site's private coins (matching the two-party protocols, where Alice
    samples privately); with several sites it must be a public coin.
    """
    return sites[0].rng if len(sites) == 1 else shared_rng


class _NestedSampler:
    """Nested subsamples of the 1-entries of one shard at geometric rates.

    A single uniform priority per 1-entry makes the levels nested (level
    ``l`` keeps an entry iff its priority is below ``keep_rates[l]``), the
    coupling the paper's between-level Chernoff argument relies on.  Levels
    are materialised lazily: only the selected level's matrix is built.
    """

    def __init__(self, a: np.ndarray, keep_rates: np.ndarray, rng: np.random.Generator) -> None:
        self.ones = a != 0
        self.keep_rates = np.asarray(keep_rates, dtype=float)
        self.priorities = rng.uniform(size=a.shape)

    def column_sums(self) -> np.ndarray:
        """Column sums of every level matrix, shape ``(levels, n_items)``."""
        return np.stack(
            [
                (self.ones & (self.priorities < rate)).sum(axis=0)
                for rate in self.keep_rates
            ]
        )

    def level_matrix(self, level: int) -> np.ndarray:
        """Materialise the binary matrix of one level."""
        rate = self.keep_rates[level]
        return (self.ones & (self.priorities < rate)).astype(np.int64)


def _nested_sampler_task(
    rng: np.random.Generator, shard: np.ndarray, keep_rates: np.ndarray
) -> tuple[tuple[_NestedSampler, np.ndarray], np.random.Generator]:
    """One site's down-scaling fan-out: nested sampler + level column sums.

    Priorities come from the site's private ``rng`` (returned advanced per
    the runtime contract); the sampler itself is returned so the selected
    level's matrix can be materialised later.
    """
    sampler = _NestedSampler(shard, keep_rates, rng)
    return (sampler, sampler.column_sums()), rng


def _build_samplers(
    runtime: Runtime,
    sites: list[Site],
    shards: list[np.ndarray],
    keep_rates: np.ndarray,
) -> tuple[list[_NestedSampler], list[np.ndarray]]:
    """Fan the nested subsampling out over the sites (private coins each)."""
    outcomes = runtime.map_sites(
        _nested_sampler_task, sites, [(shard, keep_rates) for shard in shards]
    )
    samplers = [sampler for sampler, _ in outcomes]
    stacks = [stack for _, stack in outcomes]
    return samplers, stacks


def _select_level(
    coordinator: Coordinator,
    sites: list[Site],
    stacks: list[np.ndarray],
    shards: list[np.ndarray],
    b: np.ndarray,
    threshold: float,
    *,
    label_prefix: str,
) -> tuple[int, np.ndarray]:
    """Rounds 1-2 of the skeleton: pick the first level with small l1 mass.

    Every site sends the column sums of its shard's level matrices (Remark 2
    applied per level, precomputed in the fan-out phase); the coordinator
    merges them, computes ``||A^l B||_1`` for each level, picks the first
    ``l*`` at or below ``threshold`` and broadcasts it.  Returns
    ``(l*, masses)``.
    """
    for site, stack, shard in zip(sites, stacks, shards):
        n_rows = int(shard.shape[0])
        bits = stack.size * bitcost.bits_for_index(max(n_rows + 1, 2))
        site.send(stack, label=f"{label_prefix}level-column-sums", bits=bits)

    row_sums = b.sum(axis=1).astype(float)
    masses = np.sum(stacks, axis=0).astype(float) @ row_sums
    below = np.flatnonzero(masses <= threshold)
    l_star = int(below[0]) if below.size else len(masses) - 1
    coordinator.broadcast(
        l_star,
        label=f"{label_prefix}level-choice",
        bits=bitcost.bits_for_index(max(len(masses), 2)),
        sites=sites,
    )
    return l_star, masses


def _split_and_take_max(
    coordinator: Coordinator,
    sites: list[Site],
    level_matrices: list[np.ndarray],
    site_counts: list[np.ndarray],
    b: np.ndarray,
    *,
    label_prefix: str,
    runtime: Runtime | None = None,
) -> tuple[float, dict]:
    """Steps 7-14 of Algorithm 2: index exchange and the shared maximum."""
    site_shares, c_coord, info = star_exchange_item_supports(
        coordinator,
        sites,
        level_matrices,
        b,
        site_counts=site_counts,
        label_prefix=label_prefix,
        send_u_counts=False,
        runtime=runtime,
    )
    shared_max = float(c_coord.max()) if c_coord.size else 0.0
    for site, share in zip(sites, site_shares):
        site_max = float(share.max()) if share.size else 0.0
        site.send(
            site_max, label=f"{label_prefix}site-share-max", bits=bitcost.FLOAT_BITS
        )
        shared_max = max(shared_max, site_max)
    return shared_max, info


class StarTwoPlusEpsilonLinfProtocol(StarProtocol):
    """Algorithm 2: ``(2 + eps)``-approximation of ``||A B||_inf`` (binary).

    Parameters
    ----------
    epsilon:
        Approximation slack; the output is within a ``(2 + eps)`` factor of
        ``||A B||_inf`` with the protocol's success probability.
    gamma_constant:
        The threshold is ``gamma = gamma_constant * log(n) / eps^2`` (the
        paper uses ``10^4``; the default is laptop-scale).  When
        ``gamma * n^2 >= ||A B||_1`` no down-scaling happens and the protocol
        is exact up to the share-wise split.
    gamma:
        Explicit threshold override (takes precedence over
        ``gamma_constant``).
    """

    name = "linf-binary-2plus-eps"

    def __init__(
        self,
        epsilon: float = 0.25,
        *,
        gamma_constant: float = 100.0,
        gamma: float | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if not 0 < epsilon <= 1:
            raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
        self.epsilon = float(epsilon)
        self.gamma_constant = float(gamma_constant)
        self.gamma = gamma

    def _execute(self, coordinator: Coordinator, sites: list[Site]):
        shards = [_require_binary(site.data, site.name) for site in sites]
        b = _require_binary(coordinator.data, "the coordinator")
        check_inner_dims(sites, b)
        total_rows = total_rows_of(sites)
        n = max(total_rows, b.shape[0], b.shape[1])

        ones_in_a = int(sum(int(shard.sum()) for shard in shards))
        if ones_in_a == 0 or int(b.sum()) == 0:
            for site in sites:
                site.send(0, label="empty", bits=1)
            return 0.0, {"level": 0, "keep_rate": 1.0}

        gamma = (
            self.gamma
            if self.gamma is not None
            else self.gamma_constant * math.log(max(n, 2)) / self.epsilon**2
        )
        threshold = gamma * total_rows * b.shape[1]

        num_levels = int(math.ceil(math.log(max(ones_in_a, 2)) / math.log1p(self.epsilon))) + 1
        keep_rates = (1.0 + self.epsilon) ** (-np.arange(num_levels))
        samplers, stacks = _build_samplers(self.runtime, sites, shards, keep_rates)

        l_star, masses = _select_level(
            coordinator, sites, stacks, shards, b, threshold, label_prefix="alg2/"
        )
        keep_rate = float(keep_rates[l_star])

        shared_max, info = _split_and_take_max(
            coordinator,
            sites,
            [sampler.level_matrix(l_star) for sampler in samplers],
            [stack[l_star] for stack in stacks],
            b,
            label_prefix="alg2/",
            runtime=self.runtime,
        )
        estimate = shared_max / keep_rate
        details = {
            "level": l_star,
            "keep_rate": keep_rate,
            "level_l1_mass": float(masses[l_star]),
            "threshold": threshold,
            "exchanged_indices": info["exchanged_indices"],
        }
        return estimate, details


class StarKappaApproxLinfProtocol(StarProtocol):
    """Algorithm 3: ``kappa``-approximation of ``||A B||_inf`` (binary).

    Parameters
    ----------
    kappa:
        Target approximation factor (the paper analyses ``kappa in [4, n]``).
    alpha_constant:
        ``alpha = alpha_constant * log(n)``; both the universe-sampling rate
        ``q = min(alpha/kappa, 1)`` and the level threshold
        ``alpha * n^2 / kappa`` use it.  The paper's constant is ``10^4``.
    """

    name = "linf-binary-kappa"

    def __init__(
        self,
        kappa: float,
        *,
        alpha_constant: float = 32.0,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if kappa < 1:
            raise ValueError(f"kappa must be >= 1, got {kappa}")
        self.kappa = float(kappa)
        self.alpha_constant = float(alpha_constant)

    def _execute(self, coordinator: Coordinator, sites: list[Site]):
        shards = [_require_binary(site.data, site.name) for site in sites]
        b = _require_binary(coordinator.data, "the coordinator")
        check_inner_dims(sites, b)
        total_rows = total_rows_of(sites)
        n_items = b.shape[0]
        n = max(total_rows, n_items, b.shape[1])

        alpha = self.alpha_constant * math.log(max(n, 2))
        q = min(alpha / self.kappa, 1.0)

        # Universe sampling: keep each shared item (column of A) with prob q.
        kept_items = _universe_mask_rng(sites, self.shared_rng).uniform(size=n_items) < q
        primed = []
        for shard in shards:
            shard_prime = shard.copy()
            shard_prime[:, ~kept_items] = 0
            primed.append(shard_prime)

        # Remark 2 on both A and A': every site ships both column-sum vectors
        # (sums fan out; sends and merges stay serial in site order).
        both_sums = self.runtime.map(
            _pair_column_sums,
            [(shard, shard_prime) for shard, shard_prime in zip(shards, primed)],
        )
        merged_a = np.zeros(n_items, dtype=np.int64)
        merged_a_prime = np.zeros(n_items, dtype=np.int64)
        for site, shard, (column_sums, column_sums_prime) in zip(
            sites, shards, both_sums
        ):
            bits = 2 * n_items * bitcost.bits_for_index(max(int(shard.shape[0]) + 1, 2))
            site.send(
                {"A": column_sums, "A_prime": column_sums_prime},
                label="alg3/column-sums",
                bits=bits,
            )
            merged_a += column_sums
            merged_a_prime += column_sums_prime
        row_sums = b.sum(axis=1).astype(float)
        c_l1 = float(merged_a.astype(float) @ row_sums)
        d_l1 = float(merged_a_prime.astype(float) @ row_sums)

        if d_l1 == 0:
            value = 0.0 if c_l1 == 0 else 1.0
            coordinator.broadcast(
                value,
                label="alg3/degenerate-output",
                bits=bitcost.FLOAT_BITS,
                sites=sites,
            )
            return value, {"universe_keep_rate": q, "degenerate": True}

        ones_in_a_prime = max(int(sum(int(s.sum()) for s in primed)), 2)
        num_levels = int(math.ceil(math.log2(ones_in_a_prime))) + 1
        keep_rates = 2.0 ** (-np.arange(num_levels))
        samplers, stacks = _build_samplers(self.runtime, sites, primed, keep_rates)
        threshold = alpha * total_rows * b.shape[1] / self.kappa

        l_star, masses = _select_level(
            coordinator, sites, stacks, primed, b, threshold, label_prefix="alg3/"
        )
        keep_rate = float(keep_rates[l_star])

        shared_max, info = _split_and_take_max(
            coordinator,
            sites,
            [sampler.level_matrix(l_star) for sampler in samplers],
            [stack[l_star] for stack in stacks],
            b,
            label_prefix="alg3/",
            runtime=self.runtime,
        )
        estimate = shared_max / (q * keep_rate)
        if estimate == 0.0 and c_l1 > 0:
            # All surviving mass vanished after subsampling; the paper's
            # fallback is to output 1, which is a valid kappa-approximation
            # because event E5 bounds every entry by kappa/4 in this case.
            estimate = 1.0
        details = {
            "universe_keep_rate": q,
            "level": l_star,
            "keep_rate": keep_rate,
            "level_l1_mass": float(masses[l_star]),
            "threshold": threshold,
            "exchanged_indices": info["exchanged_indices"],
        }
        return estimate, details


class StarGeneralMatrixLinfProtocol(StarProtocol):
    """Theorem 4.8(1): one-round ``kappa``-approximation of ``||A B||_inf``
    for general integer matrices.

    The upper bound is a classic ``l_inf``-via-``l_2`` block sketch
    (Saks–Sun [33]): partition the coordinates of a column of ``C`` into
    blocks of size ``kappa^2``, AMS-sketch each block with ``O(1)`` rows,
    and output the largest block-``l_2`` estimate; since
    ``||y||_inf <= ||y||_2 <= kappa ||y||_inf`` for a block of size
    ``kappa^2`` this is a ``kappa``-approximation up to the AMS error.

    The sketch is linear over the global rows, so every site ships the
    partial image of its shard (``O~(n^2/kappa^2)`` entries) and the
    coordinator merges them entrywise before finishing locally.

    Parameters
    ----------
    kappa:
        Target approximation factor (``1 <= kappa <= n``); the block size is
        ``kappa^2``.
    rows_per_block:
        AMS rows per block; more rows tighten the constant-factor ``l_2``
        estimation error.
    """

    name = "linf-general-blocked-ams"

    def __init__(
        self,
        kappa: float,
        *,
        rows_per_block: int = 24,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if kappa < 1:
            raise ValueError(f"kappa must be >= 1, got {kappa}")
        if rows_per_block < 1:
            raise ValueError("rows_per_block must be >= 1")
        self.kappa = float(kappa)
        self.rows_per_block = int(rows_per_block)

    def _execute(self, coordinator: Coordinator, sites: list[Site]):
        b = np.asarray(coordinator.data, dtype=np.int64)
        check_inner_dims(sites, b)
        total_rows = total_rows_of(sites)

        block_size = max(1, min(total_rows, int(math.floor(self.kappa**2))))
        num_blocks = int(math.ceil(total_rows / block_size))

        # Block-diagonal sign sketch over the global rows of C (shared
        # randomness, so every endpoint derives the same matrix).
        sketch = np.zeros((num_blocks * self.rows_per_block, total_rows))
        block_of_row = np.arange(total_rows) // block_size
        signs = self.shared_rng.choice(
            np.array([-1.0, 1.0]), size=(num_blocks * self.rows_per_block, total_rows)
        )
        for block in range(num_blocks):
            members = block_of_row == block
            rows = slice(block * self.rows_per_block, (block + 1) * self.rows_per_block)
            sketch[rows, members] = signs[rows, members]

        # Round 1 (the only round): per-site partial images of S A.  Each
        # site gets only its column block of the shared sketch (fan-out);
        # sends and the entrywise merge stay serial in site order.
        partials = self.runtime.map(
            _blocked_sketch_task,
            [
                (sketch[:, site.rows], np.asarray(site.data, dtype=np.int64))
                for site in sites
            ],
        )
        sketched_a = None
        for site, partial in zip(sites, partials):
            site.send(
                partial,
                label="sketch-of-A",
                bits=bitcost.bits_for_matrix(partial),
            )
            sketched_a = partial if sketched_a is None else sketched_a + partial

        sketched_c = sketched_a @ b.astype(float)  # (num_blocks * rows, n_cols)
        per_block = sketched_c.reshape(num_blocks, self.rows_per_block, -1)
        block_l2_estimates = np.sqrt(np.mean(per_block**2, axis=1))  # (num_blocks, n_cols)
        estimate = float(block_l2_estimates.max()) if block_l2_estimates.size else 0.0
        details = {
            "block_size": block_size,
            "num_blocks": num_blocks,
            "sketch_rows": int(sketch.shape[0]),
        }
        return estimate, details
