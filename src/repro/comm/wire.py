"""Byte-exact wire encoding for sketch state arrays.

The streaming runtime ships *serialized* sketch deltas between sites and
the coordinator, so the :class:`repro.comm.network.Network` meters the
actual number of encoded bytes on the wire instead of the formula-based
estimates in :mod:`repro.comm.bitcost` (which the one-shot protocols keep
using).  This module defines that encoding.

Design goals, in order:

1. **Bit-exact round trips** — ``decode_array(encode_array(x))`` restores
   ``x``'s shape, dtype and every byte of its contents (the property tests
   compare ``tobytes()``).
2. **Compactness without loss** — values travel in the narrowest integer
   dtype that represents them exactly (an ``int64`` state whose entries fit
   in one byte costs one byte per entry; a ``float64`` state holding only
   integers — the AMS/CountSketch states are sign-weighted sums of integer
   updates — is shipped as integers and widened back on decode).  Mostly
   zero states switch to a sparse (index, value) encoding when that is
   smaller.
3. **Self-description** — a record carries its own dtype/shape header, so a
   coordinator can decode a delta knowing only the shared sketch template.

Record layout (all integers little-endian)::

    magic   b"RS"      (2 bytes)
    version 0x01       (1 byte)
    kind    0|1|2      (1 byte: absent state / dense / sparse)
    -- absent states (a sketch before its first update) end here --
    dtype_orig (1 byte), dtype_wire (1 byte), ndim (1 byte)
    shape   ndim x uint32
    dense:  size x wire-dtype values (C order)
    sparse: nnz uint32, nnz x uint32 flat indices, nnz x wire-dtype values

Bundles (several named records in one message) prepend a count and a
length-prefixed name per record, so one upstream message can carry the
deltas of every sketch family a site maintains.
"""

from __future__ import annotations

import struct

import numpy as np

__all__ = [
    "MAX_DECODE_BYTES",
    "WireFormatError",
    "decode_array",
    "decode_bundle",
    "encode_array",
    "encode_bundle",
    "is_exact_integer_valued",
    "payload_bits",
]

_MAGIC = b"RS"
_VERSION = 1

#: Upper bound on one record's decoded (dense) size.  Dense records are
#: already bounded by the payload they arrived in, but a *sparse* record
#: materializes ``prod(shape)`` entries from a few bytes — a corrupt shape
#: field must not make a receiver allocate gigabytes before any integrity
#: check fires (the same principle as ``framing.MAX_FRAME_BYTES``).  1 GiB
#: comfortably holds every state the repo's sketches ship.
MAX_DECODE_BYTES = 1 << 30

_KIND_ABSENT = 0
_KIND_DENSE = 1
_KIND_SPARSE = 2

#: Wire dtype registry: code <-> numpy dtype.  Codes are part of the format.
_DTYPES: dict[int, np.dtype] = {
    1: np.dtype("<i1"),
    2: np.dtype("<i2"),
    3: np.dtype("<i4"),
    4: np.dtype("<i8"),
    5: np.dtype("<f4"),
    6: np.dtype("<f8"),
}
_CODES = {dtype: code for code, dtype in _DTYPES.items()}

#: Integer wire dtypes from narrowest to widest, with their value ranges.
_INT_LADDER = [
    (np.dtype("<i1"), -(2**7), 2**7 - 1),
    (np.dtype("<i2"), -(2**15), 2**15 - 1),
    (np.dtype("<i4"), -(2**31), 2**31 - 1),
    (np.dtype("<i8"), -(2**63), 2**63 - 1),
]


class WireFormatError(ValueError):
    """A payload does not parse as a wire-format record."""


def is_exact_integer_valued(array: np.ndarray) -> bool:
    """Every value is an integer exactly representable in a float64.

    The bit-exactness invariant shared by the codec's float->int downcast
    and the streaming runtime's turnstile ingestion guard: finite, integral,
    and within +-2**53 (beyond which float64 cannot hold integers exactly).
    """
    return bool(
        np.all(np.isfinite(array))
        and np.all(array == np.trunc(array))
        and (array.size == 0 or np.all(np.abs(array) <= 2.0**53))
    )


def _dtype_code(dtype: np.dtype) -> int:
    normalized = np.dtype(dtype).newbyteorder("<")
    if normalized not in _CODES:
        raise WireFormatError(f"dtype {dtype!r} has no wire encoding")
    return _CODES[normalized]


def _narrowest_int_dtype(low: int, high: int) -> np.dtype:
    for dtype, lo, hi in _INT_LADDER:
        if lo <= low and high <= hi:
            return dtype
    raise WireFormatError(f"integer range [{low}, {high}] exceeds int64")


def _wire_dtype(array: np.ndarray) -> np.dtype:
    """The narrowest dtype that represents ``array`` exactly on the wire."""
    if array.size == 0:
        return np.dtype("<i1") if np.issubdtype(array.dtype, np.integer) else array.dtype.newbyteorder("<")
    if np.issubdtype(array.dtype, np.integer):
        return _narrowest_int_dtype(int(array.min()), int(array.max()))
    # Floats: ship as integers when every value is integral (AMS and
    # CountSketch states are sign-weighted sums of integer updates, so this
    # is the common case).  Beyond the shared exactness invariant the
    # downcast also requires no negative zeros, whose sign bit an integer
    # cannot carry.
    no_negative_zero = not np.any((array == 0) & np.signbit(array))
    if is_exact_integer_valued(array) and no_negative_zero:
        candidate = _narrowest_int_dtype(int(array.min()), int(array.max()))
        # Downcast only when it actually shrinks the payload: large-valued
        # float32 states would otherwise widen to int64.
        if candidate.itemsize <= array.dtype.itemsize:
            return candidate
    return array.dtype.newbyteorder("<")


def encode_array(array: np.ndarray | None) -> bytes:
    """Encode one state array (or an absent state) as a wire record."""
    header = struct.pack("<2sB", _MAGIC, _VERSION)
    if array is None:
        return header + struct.pack("<B", _KIND_ABSENT)

    array = np.ascontiguousarray(array)
    orig_code = _dtype_code(array.dtype)
    wire_dtype = _wire_dtype(array)
    flat = array.reshape(-1).astype(wire_dtype, copy=False)

    dense_body = flat.tobytes()
    # Entries the sparse encoding must carry explicitly: everything that is
    # not a positive zero.  Negative zeros compare equal to zero but carry a
    # sign bit, so they count as non-zero here to keep round trips bit-exact.
    if np.issubdtype(wire_dtype, np.floating):
        nonzero = np.flatnonzero((flat != 0) | np.signbit(flat))
    else:
        nonzero = np.flatnonzero(flat)
    sparse_size = 4 + nonzero.size * (4 + wire_dtype.itemsize)
    if sparse_size < len(dense_body) and flat.size < 2**32:
        kind = _KIND_SPARSE
        body = (
            struct.pack("<I", nonzero.size)
            + nonzero.astype("<u4").tobytes()
            + flat[nonzero].tobytes()
        )
    else:
        kind = _KIND_DENSE
        body = dense_body

    meta = struct.pack(
        "<BBBB", kind, orig_code, _dtype_code(wire_dtype), array.ndim
    ) + struct.pack(f"<{array.ndim}I", *array.shape)
    return header + meta + body


def decode_array(payload: bytes) -> np.ndarray | None:
    """Decode a wire record back into the original array (or ``None``)."""
    array, offset = _decode_array_at(payload, 0)
    if offset != len(payload):
        raise WireFormatError(f"{len(payload) - offset} trailing bytes after record")
    return array


def _need(payload: bytes, offset: int, nbytes: int, what: str) -> None:
    """Every read goes through here, so truncation raises WireFormatError."""
    if offset + nbytes > len(payload):
        raise WireFormatError(
            f"truncated payload: need {nbytes} bytes for {what} at offset "
            f"{offset}, have {len(payload) - offset}"
        )


def _decode_array_at(payload: bytes, offset: int) -> tuple[np.ndarray | None, int]:
    _need(payload, offset, 4, "record header")
    magic, version = struct.unpack_from("<2sB", payload, offset)
    if magic != _MAGIC:
        raise WireFormatError(f"bad magic {magic!r}")
    if version != _VERSION:
        raise WireFormatError(f"unsupported wire version {version}")
    offset += 3
    (kind,) = struct.unpack_from("<B", payload, offset)
    offset += 1
    if kind == _KIND_ABSENT:
        return None, offset
    if kind not in (_KIND_DENSE, _KIND_SPARSE):
        raise WireFormatError(f"unknown record kind {kind}")

    _need(payload, offset, 3, "dtype/ndim header")
    orig_code, wire_code, ndim = struct.unpack_from("<BBB", payload, offset)
    offset += 3
    if orig_code not in _DTYPES or wire_code not in _DTYPES:
        raise WireFormatError(f"unknown dtype code {orig_code}/{wire_code}")
    _need(payload, offset, 4 * ndim, "shape")
    shape = struct.unpack_from(f"<{ndim}I", payload, offset)
    offset += 4 * ndim
    wire_dtype = _DTYPES[wire_code]
    size = 1
    for dim in shape:  # python ints: a corrupt shape cannot overflow-wrap
        size *= int(dim)

    if kind == _KIND_DENSE:
        nbytes = size * wire_dtype.itemsize
        _need(payload, offset, nbytes, "dense values")
        flat = np.frombuffer(payload, dtype=wire_dtype, count=size, offset=offset)
        offset += nbytes
    else:
        if size >= 2**32:
            # The encoder only emits sparse records for sizes below 2**32
            # (uint32 flat indices); anything larger is corruption.
            raise WireFormatError(f"sparse record size {size} exceeds uint32 indexing")
        itemsize = max(wire_dtype.itemsize, _DTYPES[orig_code].itemsize)
        if size * itemsize > MAX_DECODE_BYTES:
            raise WireFormatError(
                f"sparse record would materialize {size * itemsize} dense bytes "
                f"(cap {MAX_DECODE_BYTES})"
            )
        _need(payload, offset, 4, "sparse count")
        (nnz,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        _need(payload, offset, nnz * (4 + wire_dtype.itemsize), "sparse entries")
        indices = np.frombuffer(payload, dtype="<u4", count=nnz, offset=offset)
        offset += 4 * nnz
        values = np.frombuffer(payload, dtype=wire_dtype, count=nnz, offset=offset)
        offset += nnz * wire_dtype.itemsize
        if nnz and indices.max() >= size:
            raise WireFormatError(
                f"sparse index {int(indices.max())} out of bounds for size {size}"
            )
        flat = np.zeros(size, dtype=wire_dtype)
        flat[indices] = values

    # Always copy: frombuffer views are read-only, and decoded states are
    # merged in place at the coordinator.
    array = flat.astype(_DTYPES[orig_code], copy=True).reshape(shape)
    return array, offset


def encode_bundle(records: dict[str, np.ndarray | None]) -> bytes:
    """Encode several named state arrays into one message blob.

    Iteration order is preserved (callers use a fixed family order so both
    endpoints agree on the framing without negotiation).
    """
    if len(records) > 255:
        raise WireFormatError(f"bundle holds {len(records)} records, max 255")
    parts = [struct.pack("<2sBB", _MAGIC, _VERSION, len(records))]
    for name, array in records.items():
        encoded_name = name.encode("utf-8")
        if len(encoded_name) > 255:
            raise WireFormatError(f"record name too long: {name!r}")
        record = encode_array(array)
        parts.append(struct.pack("<B", len(encoded_name)) + encoded_name)
        parts.append(struct.pack("<I", len(record)) + record)
    return b"".join(parts)


def decode_bundle(payload: bytes) -> dict[str, np.ndarray | None]:
    """Decode a bundle blob back into its named state arrays."""
    _need(payload, 0, 4, "bundle header")
    magic, version, count = struct.unpack_from("<2sBB", payload, 0)
    if magic != _MAGIC:
        raise WireFormatError(f"bad magic {magic!r}")
    if version != _VERSION:
        raise WireFormatError(f"unsupported wire version {version}")
    offset = 4
    records: dict[str, np.ndarray | None] = {}
    for _ in range(count):
        _need(payload, offset, 1, "record name length")
        (name_len,) = struct.unpack_from("<B", payload, offset)
        offset += 1
        _need(payload, offset, name_len, "record name")
        try:
            name = payload[offset : offset + name_len].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError(f"record name is not valid UTF-8: {exc}") from None
        offset += name_len
        _need(payload, offset, 4, "record length")
        (record_len,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        array, end = _decode_array_at(payload, offset)
        if end - offset != record_len:
            raise WireFormatError(f"record {name!r} length mismatch")
        offset = end
        if name in records:
            raise WireFormatError(f"duplicate record name {name!r} in bundle")
        records[name] = array
    if offset != len(payload):
        raise WireFormatError(f"{len(payload) - offset} trailing bytes after bundle")
    return records


def payload_bits(payload: bytes) -> int:
    """Bits on the wire for an encoded payload: exactly 8 per byte."""
    return 8 * len(payload)
