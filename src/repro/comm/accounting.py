"""Shared bit/round accounting for metered transports.

Both the two-party :class:`repro.comm.channel.Channel` and the star-topology
:class:`repro.comm.network.Network` charge messages the same way: every
message carries a bit cost, and a *round* counter increments whenever the
direction of communication flips.  This module holds the common machinery so
the two transports cannot drift apart.

Round semantics
---------------
Each recorded message carries a *direction key*.  Consecutive messages with
the same key belong to the same round; the counter increments whenever the
key changes (the first message opens round 1).  For a two-party channel the
key is the sender, which is exactly the classic definition.  For a star
network the key is the up/down direction, so k sites uploading their
summaries one after another share a single round — they could do so in
parallel — while a coordinator reply opens a new one.  On any individual
coordinator-site link the two notions coincide, which is what makes the
per-link meters of a ``Network`` directly comparable to a ``Channel``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Hashable


@dataclass
class Message:
    """One message recorded on a metered transport."""

    sender: str
    receiver: str
    label: str
    bits: int
    round_index: int
    payload: Any = field(repr=False, default=None)


class MessageLog:
    """Append-only message record with bit and round accounting.

    Transports (channels, network links, network aggregates) own one log
    each and feed it via :meth:`record`; all derived statistics — totals,
    per-sender bits, per-label and per-round breakdowns — live here.
    """

    def __init__(self) -> None:
        self.messages: list[Message] = []
        self._last_key: Hashable | None = None
        self._round = 0

    # ---------------------------------------------------------------- record
    def record(
        self,
        sender: str,
        receiver: str,
        payload: Any,
        *,
        label: str = "",
        bits: int,
        direction_key: Hashable | None = None,
    ) -> Message:
        """Append a message, advancing the round counter on direction flips.

        ``direction_key`` defaults to the sender (two-party semantics); a
        star network passes its up/down direction instead.
        """
        if bits < 0:
            raise ValueError("bit cost must be non-negative")
        key = sender if direction_key is None else direction_key
        if key != self._last_key:
            self._round += 1
            self._last_key = key
        message = Message(
            sender=sender,
            receiver=receiver,
            label=label,
            bits=int(bits),
            round_index=self._round,
            payload=payload,
        )
        self.messages.append(message)
        return message

    # ------------------------------------------------------------ accounting
    @property
    def total_bits(self) -> int:
        """Total bits recorded so far."""
        return sum(message.bits for message in self.messages)

    @property
    def rounds(self) -> int:
        """Number of rounds used so far (maximal direction flips)."""
        return self._round

    def bits_sent_by(self, sender: str) -> int:
        """Total bits sent by one endpoint."""
        return sum(message.bits for message in self.messages if message.sender == sender)

    def bits_by_label(self) -> dict[str, int]:
        """Total bits grouped by message label (for cost breakdowns)."""
        breakdown: Counter[str] = Counter()
        for message in self.messages:
            breakdown[message.label] += message.bits
        return dict(breakdown)

    def bits_per_round(self) -> dict[int, int]:
        """Total bits grouped by round index (1-based, ascending)."""
        breakdown: Counter[int] = Counter()
        for message in self.messages:
            breakdown[message.round_index] += message.bits
        return dict(sorted(breakdown.items()))

    def per_round(self) -> dict[int, list[Message]]:
        """Messages grouped by round index (1-based, ascending).

        The round structure is the synchronization structure of a protocol:
        everything inside one round could be in flight simultaneously, while
        rounds are sequential.  The makespan model
        (:func:`repro.comm.conditions.simulate_makespan`) consumes this
        grouping directly.
        """
        batches: dict[int, list[Message]] = {}
        for message in self.messages:
            batches.setdefault(message.round_index, []).append(message)
        return dict(sorted(batches.items()))

    def reset(self) -> None:
        """Clear all recorded traffic (used when reusing a transport)."""
        self.messages.clear()
        self._last_key = None
        self._round = 0
