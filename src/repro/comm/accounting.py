"""Shared bit/round accounting for metered transports.

Both the two-party :class:`repro.comm.channel.Channel` and the star-topology
:class:`repro.comm.network.Network` charge messages the same way: every
message carries a bit cost, and a *round* counter increments whenever the
direction of communication flips.  This module holds the common machinery so
the two transports cannot drift apart.

Round semantics
---------------
Each recorded message carries a *direction key*.  Consecutive messages with
the same key belong to the same round; the counter increments whenever the
key changes (the first message opens round 1).  For a two-party channel the
key is the sender, which is exactly the classic definition.  For a star
network the key is the up/down direction, so k sites uploading their
summaries one after another share a single round — they could do so in
parallel — while a coordinator reply opens a new one.  On any individual
coordinator-site link the two notions coincide, which is what makes the
per-link meters of a ``Network`` directly comparable to a ``Channel``.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Hashable


@dataclass
class Message:
    """One message recorded on a metered transport."""

    sender: str
    receiver: str
    label: str
    bits: int
    round_index: int
    payload: Any = field(repr=False, default=None)


class MessageLog:
    """Append-only message record with bit and round accounting.

    Transports (channels, network links, network aggregates) own one log
    each and feed it via :meth:`record`; all derived statistics — totals,
    per-sender bits, per-label and per-round breakdowns — live here.
    """

    def __init__(self) -> None:
        self.messages: list[Message] = []
        self._last_key: Hashable | None = None
        self._round = 0

    # ---------------------------------------------------------------- record
    def record(
        self,
        sender: str,
        receiver: str,
        payload: Any,
        *,
        label: str = "",
        bits: int,
        direction_key: Hashable | None = None,
    ) -> Message:
        """Append a message, advancing the round counter on direction flips.

        ``direction_key`` defaults to the sender (two-party semantics); a
        star network passes its up/down direction instead.
        """
        if bits < 0:
            raise ValueError("bit cost must be non-negative")
        key = sender if direction_key is None else direction_key
        if key != self._last_key:
            self._round += 1
            self._last_key = key
        message = Message(
            sender=sender,
            receiver=receiver,
            label=label,
            bits=int(bits),
            round_index=self._round,
            payload=payload,
        )
        self.messages.append(message)
        return message

    # ------------------------------------------------------------ accounting
    @property
    def total_bits(self) -> int:
        """Total bits recorded so far."""
        return sum(message.bits for message in self.messages)

    @property
    def rounds(self) -> int:
        """Number of rounds used so far (maximal direction flips)."""
        return self._round

    def bits_sent_by(self, sender: str) -> int:
        """Total bits sent by one endpoint."""
        return sum(message.bits for message in self.messages if message.sender == sender)

    def bits_by_label(self) -> dict[str, int]:
        """Total bits grouped by message label (for cost breakdowns)."""
        breakdown: Counter[str] = Counter()
        for message in self.messages:
            breakdown[message.label] += message.bits
        return dict(breakdown)

    def bits_per_round(self) -> dict[int, int]:
        """Total bits grouped by round index (1-based, ascending)."""
        breakdown: Counter[int] = Counter()
        for message in self.messages:
            breakdown[message.round_index] += message.bits
        return dict(sorted(breakdown.items()))

    def per_round(self) -> dict[int, list[Message]]:
        """Messages grouped by round index (1-based, ascending).

        The round structure is the synchronization structure of a protocol:
        everything inside one round could be in flight simultaneously, while
        rounds are sequential.  The makespan model
        (:func:`repro.comm.conditions.simulate_makespan`) consumes this
        grouping directly.
        """
        batches: dict[int, list[Message]] = {}
        for message in self.messages:
            batches.setdefault(message.round_index, []).append(message)
        return dict(sorted(batches.items()))

    def reset(self) -> None:
        """Clear all recorded traffic (used when reusing a transport)."""
        self.messages.clear()
        self._last_key = None
        self._round = 0


class TenantLedger:
    """Per-tenant rollups of metered quantities, with an exact aggregate.

    The multi-tenant service bills each tenant for the traffic its own
    sessions generate (upload bytes, total delta bytes, query bits, rounds,
    rows, epochs).  The classic double-entry failure modes are *double
    counting* (a quantity charged to a tenant and separately to the
    aggregate, then summed twice) and *bleed* (quantity charged to the wrong
    tenant).  The ledger rules both out by construction: :meth:`charge` is
    the only mutation point and it increments the tenant row and the
    aggregate row from the same amounts in one locked step, so

        sum over tenants of tenant_totals(t)[k] == aggregate_totals()[k]

    holds at all times.  :meth:`verify` asserts exactly that identity and is
    called by the tests and the load-generator gate.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._per_tenant: dict[str, Counter[str]] = {}
        self._aggregate: Counter[str] = Counter()

    def charge(self, tenant: str, **amounts: float) -> None:
        """Charge ``amounts`` (keyword -> quantity) to one tenant.

        Negative amounts are rejected: every metered quantity in the system
        is a monotone total.
        """
        for key, amount in amounts.items():
            if amount < 0:
                raise ValueError(
                    f"cannot charge negative {key}={amount} to tenant {tenant!r}"
                )
        with self._lock:
            row = self._per_tenant.setdefault(str(tenant), Counter())
            for key, amount in amounts.items():
                row[key] += amount
                self._aggregate[key] += amount

    def forget(self, tenant: str) -> None:
        """Drop a tenant's row *without* touching the aggregate.

        Used when a tenant is closed and its final report has been issued:
        the aggregate keeps the service-lifetime totals, matching the
        network meters which are likewise never rolled back.
        """
        with self._lock:
            self._per_tenant.pop(str(tenant), None)

    @property
    def tenants(self) -> list[str]:
        """Tenants with at least one charge, in insertion order."""
        with self._lock:
            return list(self._per_tenant)

    def tenant_totals(self, tenant: str) -> dict[str, float]:
        """All charged quantities for one tenant."""
        with self._lock:
            return dict(self._per_tenant.get(str(tenant), Counter()))

    def aggregate_totals(self) -> dict[str, float]:
        """Service-lifetime totals across every tenant ever charged."""
        with self._lock:
            return dict(self._aggregate)

    def verify(self) -> None:
        """Assert the per-tenant rows sum exactly to the aggregate.

        Only meaningful while no tenant has been :meth:`forget`-ten; the
        session manager verifies before dropping rows.
        """
        with self._lock:
            summed: Counter[str] = Counter()
            for row in self._per_tenant.values():
                summed.update(row)
            if summed != self._aggregate:
                diff = {
                    key: (summed.get(key, 0), self._aggregate.get(key, 0))
                    for key in set(summed) | set(self._aggregate)
                    if summed.get(key, 0) != self._aggregate.get(key, 0)
                }
                raise AssertionError(
                    f"tenant ledger out of balance (per-tenant sum, aggregate): {diff}"
                )
