"""Party endpoints for two-party protocols."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.comm.channel import Channel


class Party:
    """One endpoint (Alice or Bob) of a two-party protocol.

    A party owns its private input (typically a matrix), a handle to the
    shared :class:`~repro.comm.channel.Channel`, and a private random
    generator.  Shared (public-coin) randomness is modelled by constructing
    both parties' helper objects (e.g. sketching matrices) from a common seed
    at the protocol level; such seeds are never charged to communication.

    Subclasses or protocol code may freely attach scratch attributes; the
    class intentionally stays small.
    """

    def __init__(
        self,
        name: str,
        data: Any,
        channel: Channel,
        *,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.name = name
        self.data = data
        self.channel = channel
        self.rng = rng if rng is not None else np.random.default_rng()
        self.scratch: dict[str, Any] = {}

    def send(
        self,
        other: "Party",
        payload: Any,
        *,
        label: str = "",
        bits: int | None = None,
        universe: int | None = None,
    ) -> Any:
        """Send ``payload`` to ``other`` through the shared channel."""
        return self.channel.send(
            self.name,
            other.name,
            payload,
            label=label,
            bits=bits,
            universe=universe,
        )

    @property
    def bits_sent(self) -> int:
        """Total bits this party has sent so far."""
        return self.channel.bits_sent_by(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Party({self.name!r})"
