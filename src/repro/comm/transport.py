"""Transport abstraction: who builds the star network a protocol runs on.

Every engine execution wires a star :class:`~repro.comm.network.Network`
around its sites (:meth:`repro.engine.topology.StarTopology.build`, the
:class:`~repro.engine.streaming.StreamingSession` constructor).  Until the
service layer there was exactly one way to do that — the in-process metered
star — so the wiring was hard-coded.  A :class:`Transport` makes it a
pluggable decision:

* :class:`InProcessTransport` (the default everywhere) builds the classic
  in-process :class:`~repro.comm.network.Network`: messages are delivered
  by returning them, meters charge the declared formula bits.  Zero
  behaviour change — every historical transcript is produced by exactly
  this transport.
* :class:`repro.service.transport.SocketTransport` builds a
  :class:`~repro.service.transport.RemoteNetwork` bound to live TCP
  connections: every metered message additionally travels over a real
  socket to/from the site-agent processes, and observed wire bytes are
  counted per link per round.

Estimator facades accept ``transport=`` and forward it to every query's
protocol run, so all protocol families and the streaming session run
unmodified over whichever transport is plugged in.
"""

from __future__ import annotations

from typing import Sequence

from repro.comm.conditions import NetworkConditions
from repro.comm.network import Network, TreeNetwork
from repro.comm.tree import TreeSpec

__all__ = ["IN_PROCESS", "InProcessTransport", "Transport"]


class Transport:
    """Factory for the star network one protocol execution runs over.

    Subclasses implement :meth:`build_network`; a single transport instance
    may build many networks (one per protocol run), so implementations hold
    connection state, not per-run meters.

    ``tree`` selects a hierarchical overlay: a :class:`~repro.comm.tree
    .TreeSpec` whose leaves are exactly ``site_names`` and whose root is
    ``coordinator_name``.  ``None`` (the default everywhere) keeps the
    classic flat star — every historical transcript is unchanged.
    """

    def build_network(
        self,
        site_names: Sequence[str],
        coordinator_name: str,
        conditions: NetworkConditions | None = None,
        *,
        tree: TreeSpec | None = None,
    ) -> Network:
        raise NotImplementedError

    @staticmethod
    def check_tree(
        tree: TreeSpec, site_names: Sequence[str], coordinator_name: str
    ) -> TreeSpec:
        """Validate that a spec matches the star it is meant to overlay."""
        if tree.root != coordinator_name:
            raise ValueError(
                f"tree root {tree.root!r} does not match the coordinator "
                f"{coordinator_name!r}"
            )
        if list(tree.site_names) != list(site_names):
            raise ValueError(
                "tree leaves must be exactly the site names, in site order "
                f"(tree: {tree.site_names}, sites: {list(site_names)})"
            )
        return tree


class InProcessTransport(Transport):
    """The default transport: the classic in-process metered star."""

    def build_network(
        self,
        site_names: Sequence[str],
        coordinator_name: str,
        conditions: NetworkConditions | None = None,
        *,
        tree: TreeSpec | None = None,
    ) -> Network:
        if tree is not None:
            self.check_tree(tree, site_names, coordinator_name)
            return TreeNetwork(tree, conditions=conditions)
        return Network(site_names, coordinator_name, conditions=conditions)


#: Shared stateless default; used wherever no explicit transport is given.
IN_PROCESS = InProcessTransport()
