"""Length-prefixed framing of wire payloads for stream transports.

TCP delivers a byte *stream*: one ``send`` may arrive split across many
reads, and many sends may coalesce into one read.  The service layer
(:mod:`repro.service`) therefore wraps every message in a minimal frame::

    magic   b"RP"     (2 bytes)
    version 0x01      (1 byte)
    length  uint32    (little-endian byte count of the body)
    body    length x bytes

and this module owns both halves of that contract:

* :func:`encode_frame` / :func:`decode_frames` — pure functions over bytes.
* :class:`FrameDecoder` — an incremental reassembler: feed it the chunks a
  socket actually produced (partial frames, coalesced frames, byte-by-byte
  dribble) and it yields exactly the framed bodies, in order.  The
  hypothesis suite in ``tests/service/test_framing.py`` pins the property
  that *any* byte-level chunking of a framed stream reassembles to
  identical messages.

Malformed input — wrong magic, unsupported version, or a declared length
above :data:`MAX_FRAME_BYTES` — raises :class:`FramingError` immediately;
a truncated tail is not an error until the stream closes (the decoder
simply reports bytes still pending via :attr:`FrameDecoder.pending`).
"""

from __future__ import annotations

import struct

__all__ = [
    "FramingError",
    "FrameDecoder",
    "HEADER_BYTES",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "encode_frames",
    "decode_frames",
]

_MAGIC = b"RP"
_VERSION = 1

#: magic + version + uint32 length.
HEADER_BYTES = 7

#: Upper bound on one frame's body; a corrupt length field must not make a
#: receiver buffer gigabytes before noticing.  1 GiB comfortably holds any
#: shard or sketch bundle the repo ships.
MAX_FRAME_BYTES = 1 << 30


class FramingError(ValueError):
    """A byte stream does not parse as a sequence of frames."""


def encode_frame(body: bytes) -> bytes:
    """Wrap one message body in a length-prefixed frame."""
    if len(body) > MAX_FRAME_BYTES:
        raise FramingError(
            f"frame body of {len(body)} bytes exceeds the {MAX_FRAME_BYTES} cap"
        )
    return struct.pack("<2sBI", _MAGIC, _VERSION, len(body)) + body


def encode_frames(bodies) -> bytes:
    """Frame several message bodies into one coalesced byte buffer.

    The tree transports pipeline many small control messages back to back
    (round-open + payload, routed forwards); writing each frame with its
    own ``sendall`` costs one syscall per message.  Coalescing them into a
    single buffer — header and payload together, frames back to back — cuts
    that to one write, and the stream contract is unchanged:
    :class:`FrameDecoder` reassembles the identical message sequence under
    *any* chunking of the result (pinned by the hypothesis framing suite).
    """
    return b"".join(encode_frame(body) for body in bodies)


class FrameDecoder:
    """Incremental frame reassembler over an arbitrarily chunked stream."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending(self) -> int:
        """Bytes buffered but not yet part of a complete frame."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> list[bytes]:
        """Absorb one chunk; return every message body it completed."""
        self._buffer.extend(chunk)
        bodies: list[bytes] = []
        while True:
            if len(self._buffer) < HEADER_BYTES:
                return bodies
            magic, version, length = struct.unpack_from("<2sBI", self._buffer, 0)
            if magic != _MAGIC:
                raise FramingError(f"bad frame magic {bytes(magic)!r}")
            if version != _VERSION:
                raise FramingError(f"unsupported frame version {version}")
            if length > MAX_FRAME_BYTES:
                raise FramingError(
                    f"declared frame body of {length} bytes exceeds the "
                    f"{MAX_FRAME_BYTES} cap"
                )
            if len(self._buffer) < HEADER_BYTES + length:
                return bodies
            bodies.append(bytes(self._buffer[HEADER_BYTES : HEADER_BYTES + length]))
            del self._buffer[: HEADER_BYTES + length]

    def close(self) -> None:
        """Declare end-of-stream; leftover bytes mean a truncated frame."""
        if self._buffer:
            raise FramingError(
                f"stream closed with {len(self._buffer)} bytes of an "
                f"incomplete frame pending"
            )


def decode_frames(stream: bytes) -> list[bytes]:
    """Decode a complete byte stream into its framed bodies."""
    decoder = FrameDecoder()
    bodies = decoder.feed(stream)
    decoder.close()
    return bodies
