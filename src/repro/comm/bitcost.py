"""Bit-cost accounting for protocol payloads.

Every message sent over a :class:`repro.comm.channel.Channel` is charged a
number of bits.  All charging rules live in this module so that the
assumptions behind every communication measurement in the benchmarks are
explicit and unit-tested.

Conventions (matching the standard conventions in the communication
complexity literature and the paper's ``O~`` accounting):

* An integer known to lie in ``[0, universe)`` costs ``ceil(log2(universe))``
  bits (at least 1).
* An unbounded integer ``v`` costs ``max(1, v.bit_length()) + 1`` bits
  (one sign bit).
* A float (real number communicated with machine precision) costs
  ``FLOAT_BITS`` = 64 bits.  The paper assumes ``O~(1)``-bit entries for
  sketching matrices; we charge full doubles, which only affects constants.
* A list of indices from ``[0, universe)`` costs
  ``len * ceil(log2(universe))`` bits.
* Dense vectors/matrices cost ``size * per_entry`` bits.

Shared randomness (sketch seeds) is *not* charged: the protocols are
public-coin, and by Newman's theorem the difference to the private-coin model
is an additive ``O(log n)`` bits.
"""

from __future__ import annotations

import math
from typing import Iterable, Sized

import numpy as np

#: Bits charged for one real number sent with machine precision.
FLOAT_BITS = 64

#: Bits charged for one entry of an integer matrix/vector whose magnitude is
#: only polynomially bounded (the paper's ``poly(n)``-bounded entries).
INT_ENTRY_BITS = 32


def bits_for_index(universe: int) -> int:
    """Bits needed to name one element of ``[0, universe)``.

    Parameters
    ----------
    universe:
        Size of the universe the index is drawn from.  Must be >= 1.
    """
    if universe < 1:
        raise ValueError(f"universe must be >= 1, got {universe}")
    return max(1, math.ceil(math.log2(universe))) if universe > 1 else 1


def bits_for_int(value: int) -> int:
    """Bits for an arbitrary (signed) integer value."""
    magnitude = abs(int(value))
    return max(1, magnitude.bit_length()) + 1


def bits_for_float(value: float = 0.0) -> int:
    """Bits for one real number (machine precision double)."""
    del value  # cost is independent of the value
    return FLOAT_BITS


def bits_for_index_list(indices: Sized, universe: int) -> int:
    """Bits for a list of indices from ``[0, universe)`` plus its length."""
    return bits_for_int(len(indices)) + len(indices) * bits_for_index(universe)


def bits_for_vector(vector: np.ndarray, *, per_entry: int | None = None) -> int:
    """Bits for a dense vector.

    Integer dtypes are charged :data:`INT_ENTRY_BITS` per entry and float
    dtypes :data:`FLOAT_BITS` per entry unless ``per_entry`` overrides this.
    """
    array = np.asarray(vector)
    if per_entry is None:
        per_entry = FLOAT_BITS if np.issubdtype(array.dtype, np.floating) else INT_ENTRY_BITS
    return int(array.size) * per_entry


def bits_for_matrix(matrix: np.ndarray, *, per_entry: int | None = None) -> int:
    """Bits for a dense matrix (same rule as :func:`bits_for_vector`)."""
    return bits_for_vector(np.asarray(matrix).reshape(-1), per_entry=per_entry)


def bits_for_sparse_rows(
    row_indices: Iterable[int], n_cols: int, n_rows: int
) -> int:
    """Bits for sending a subset of rows of a binary ``n_rows x n_cols`` matrix.

    Each row is sent as a dense bit-vector of length ``n_cols`` (the paper's
    Algorithm 1 sends whole rows of the binary/integer matrix ``A``), plus the
    row identifier.
    """
    rows = list(row_indices)
    return len(rows) * (n_cols + bits_for_index(max(n_rows, 1)))


def bits_for_payload(payload: object, *, universe: int | None = None) -> int:
    """Best-effort bit cost for an arbitrary payload.

    Used by the channel when the sender does not provide an explicit cost.
    Supported payload types: ``int``, ``float``, ``numpy.ndarray``, ``list`` /
    ``tuple`` / ``set`` of ints (requires ``universe``), ``dict`` (sum over
    values, keys charged as indices of ``universe``), ``None`` (free).
    """
    if payload is None:
        return 0
    if isinstance(payload, (bool, np.bool_)):
        return 1
    if isinstance(payload, (int, np.integer)):
        return bits_for_int(int(payload))
    if isinstance(payload, (float, np.floating)):
        return bits_for_float(float(payload))
    if isinstance(payload, np.ndarray):
        return bits_for_vector(payload.reshape(-1))
    if isinstance(payload, (list, tuple, set, frozenset)):
        items = list(payload)
        if all(isinstance(item, (int, np.integer)) for item in items):
            if universe is not None:
                return bits_for_index_list(items, universe)
            return sum(bits_for_int(int(item)) for item in items) + bits_for_int(len(items))
        return sum(bits_for_payload(item, universe=universe) for item in items)
    if isinstance(payload, dict):
        total = bits_for_int(len(payload))
        for key, value in payload.items():
            total += bits_for_payload(key, universe=universe)
            total += bits_for_payload(value, universe=universe)
        return total
    raise TypeError(f"cannot compute a bit cost for payload of type {type(payload)!r}")
