"""Star-topology metered network: k sites around one coordinator.

This is the repo's one physical transport.  The k-party generalization of
the classic two-party channel for the coordinator model of distributed
functional monitoring: messages only travel between a site and the
coordinator (the star's hub) — sites never talk to each other directly,
matching the model in the literature.  The two-party
:class:`repro.comm.channel.Channel` is a view of this class with a single
site (Alice) and the hub playing Bob.

Accounting contract (via the shared
:class:`repro.comm.accounting.MessageLog`):

* an *aggregate* log meters ``total_bits``, ``rounds``, ``bits_by_label``
  and ``bits_per_round`` across the whole star.  Its round counter flips on
  the up/down *direction*: k sites uploading back-to-back share one round
  (they could do so in parallel), while a coordinator reply opens a new one.
  With a single site this reduces exactly to the two-party definition.
* a *per-link* log per site meters the same quantities restricted to that
  coordinator-site link, with the two-party (sender-flip) round semantics.
  ``max_link_bits`` — the busiest link — is the quantity that bounds the
  star's makespan when links transfer in parallel.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.comm import bitcost
from repro.comm.accounting import MessageLog

#: Direction keys for the aggregate round counter.
UPSTREAM = "up"
DOWNSTREAM = "down"


class Network:
    """In-process star network with per-link and aggregate accounting.

    Parameters
    ----------
    site_names:
        Names of the k leaf sites (order fixes the site indexing).
    coordinator_name:
        Name of the hub endpoint.
    """

    def __init__(
        self,
        site_names: Sequence[str],
        coordinator_name: str = "coordinator",
    ) -> None:
        site_names = list(site_names)
        if not site_names:
            raise ValueError("a star network needs at least one site")
        if len(set(site_names)) != len(site_names):
            raise ValueError("site names must be unique")
        if coordinator_name in site_names:
            raise ValueError("the coordinator cannot double as a site")
        self.coordinator_name = coordinator_name
        self.site_names = site_names
        self.links: dict[str, MessageLog] = {name: MessageLog() for name in site_names}
        self.log = MessageLog()

    # ------------------------------------------------------------------ send
    def send(
        self,
        sender: str,
        receiver: str,
        payload: Any,
        *,
        label: str = "",
        bits: int | None = None,
        universe: int | None = None,
    ) -> Any:
        """Record a message on one coordinator-site link and deliver it.

        Exactly one of ``sender`` / ``receiver`` must be the coordinator —
        the star has no site-to-site links.  ``bits`` defaults to
        :func:`repro.comm.bitcost.bits_for_payload` like the two-party
        channel.
        """
        if sender == receiver:
            raise ValueError("sender and receiver must differ")
        if self.coordinator_name not in (sender, receiver):
            raise ValueError(
                f"star topology: one endpoint must be {self.coordinator_name!r} "
                f"(got {sender!r} -> {receiver!r})"
            )
        direction = DOWNSTREAM if sender == self.coordinator_name else UPSTREAM
        site = receiver if direction == DOWNSTREAM else sender
        if site not in self.links:
            raise ValueError(f"unknown site {site!r}; expected one of {self.site_names}")
        if bits is None:
            bits = bitcost.bits_for_payload(payload, universe=universe)
        self.log.record(sender, receiver, payload, label=label, bits=bits, direction_key=direction)
        self.links[site].record(sender, receiver, payload, label=label, bits=bits)
        return payload

    def broadcast(
        self,
        payload: Any,
        *,
        label: str = "",
        bits: int | None = None,
        sites: Iterable[str] | None = None,
    ) -> Any:
        """Send ``payload`` from the coordinator to every site (one round).

        ``bits`` is the per-link cost of the payload (each link carries its
        own copy).  All copies travel downstream, so a broadcast occupies a
        single aggregate round regardless of k.
        """
        for site in self.site_names if sites is None else sites:
            self.send(self.coordinator_name, site, payload, label=label, bits=bits)
        return payload

    # ------------------------------------------------------------ accounting
    @property
    def total_bits(self) -> int:
        """Total bits over all links."""
        return self.log.total_bits

    @property
    def rounds(self) -> int:
        """Aggregate rounds (up/down direction flips)."""
        return self.log.rounds

    def bits_sent_by(self, sender: str) -> int:
        """Total bits sent by one endpoint (a site or the coordinator)."""
        return self.log.bits_sent_by(sender)

    def bits_by_label(self) -> dict[str, int]:
        """Total bits grouped by message label, over all links."""
        return self.log.bits_by_label()

    def bits_per_round(self) -> dict[int, int]:
        """Total bits grouped by aggregate round index."""
        return self.log.bits_per_round()

    def link(self, site_name: str) -> MessageLog:
        """The per-link meter for one coordinator-site link."""
        return self.links[site_name]

    def link_bits(self) -> dict[str, int]:
        """Per-site link load: total bits on each coordinator-site link."""
        return {name: meter.total_bits for name, meter in self.links.items()}

    @property
    def max_link_bits(self) -> int:
        """Load of the busiest coordinator-site link."""
        return max(meter.total_bits for meter in self.links.values())

    def reset(self) -> None:
        """Clear all recorded traffic on every link."""
        self.log.reset()
        for meter in self.links.values():
            meter.reset()
