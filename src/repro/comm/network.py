"""Star-topology metered network: k sites around one coordinator.

This is the repo's one physical transport.  The k-party generalization of
the classic two-party channel for the coordinator model of distributed
functional monitoring: messages only travel between a site and the
coordinator (the star's hub) — sites never talk to each other directly,
matching the model in the literature.  The two-party
:class:`repro.comm.channel.Channel` is a view of this class with a single
site (Alice) and the hub playing Bob.

Accounting contract (via the shared
:class:`repro.comm.accounting.MessageLog`):

* an *aggregate* log meters ``total_bits``, ``rounds``, ``bits_by_label``
  and ``bits_per_round`` across the whole star.  Its round counter flips on
  the up/down *direction*: k sites uploading back-to-back share one round
  (they could do so in parallel), while a coordinator reply opens a new one.
  With a single site this reduces exactly to the two-party definition.
* a *per-link* log per site meters the same quantities restricted to that
  coordinator-site link, with the two-party (sender-flip) round semantics.
  ``max_link_bits`` — the busiest link — is a *lower bound* ingredient of
  the simulated makespan when links transfer in parallel.

A network optionally carries :class:`repro.comm.conditions
.NetworkConditions` (per-link latency/bandwidth/jitter models); the
recorded transcript is then priced into a simulated **makespan** — the
critical-path time over rounds, links in parallel — via :meth:`Network
.makespan` / :meth:`Network.makespan_per_round`.  Under the default ideal
conditions both report zeros and nothing about the bit/round meters
changes.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.comm import bitcost
from repro.comm.accounting import MessageLog
from repro.comm.conditions import NetworkConditions, simulate_makespan

#: Direction keys for the aggregate round counter.
UPSTREAM = "up"
DOWNSTREAM = "down"


class Network:
    """In-process star network with per-link and aggregate accounting.

    Parameters
    ----------
    site_names:
        Names of the k leaf sites (order fixes the site indexing).
    coordinator_name:
        Name of the hub endpoint.
    conditions:
        Optional per-link timing models (defaults to ideal links: zero
        latency, infinite bandwidth — makespan 0).
    """

    def __init__(
        self,
        site_names: Sequence[str],
        coordinator_name: str = "coordinator",
        *,
        conditions: NetworkConditions | None = None,
    ) -> None:
        site_names = list(site_names)
        if not site_names:
            raise ValueError("a star network needs at least one site")
        if len(set(site_names)) != len(site_names):
            raise ValueError("site names must be unique")
        if coordinator_name in site_names:
            raise ValueError("the coordinator cannot double as a site")
        self.coordinator_name = coordinator_name
        self.site_names = site_names
        self.conditions = conditions if conditions is not None else NetworkConditions()
        unknown = (
            set(self.conditions.overrides) - set(site_names) - self.conditions.dropped
        )
        if unknown:
            # A link override that names no site would be silently priced as
            # the default model — a typo'd straggler scenario must fail loud,
            # like unknown dropped-site declarations do.  Overrides for sites
            # the conditions themselves declare dropped are legitimate: the
            # protocol driver excludes those sites before wiring the star.
            raise ValueError(
                f"link-model overrides {sorted(unknown)} match no site of "
                f"this star (sites: {site_names})"
            )
        self.links: dict[str, MessageLog] = {name: MessageLog() for name in site_names}
        self.log = MessageLog()

    # ------------------------------------------------------------------ send
    def send(
        self,
        sender: str,
        receiver: str,
        payload: Any,
        *,
        label: str = "",
        bits: int | None = None,
        universe: int | None = None,
    ) -> Any:
        """Record a message on one coordinator-site link and deliver it.

        Exactly one of ``sender`` / ``receiver`` must be the coordinator —
        the star has no site-to-site links.  ``bits`` defaults to
        :func:`repro.comm.bitcost.bits_for_payload` like the two-party
        channel.
        """
        if sender == receiver:
            raise ValueError("sender and receiver must differ")
        if self.coordinator_name not in (sender, receiver):
            raise ValueError(
                f"star topology: one endpoint must be {self.coordinator_name!r} "
                f"(got {sender!r} -> {receiver!r})"
            )
        direction = DOWNSTREAM if sender == self.coordinator_name else UPSTREAM
        site = receiver if direction == DOWNSTREAM else sender
        if site not in self.links:
            raise ValueError(f"unknown site {site!r}; expected one of {self.site_names}")
        if bits is None:
            bits = bitcost.bits_for_payload(payload, universe=universe)
        self.log.record(sender, receiver, payload, label=label, bits=bits, direction_key=direction)
        self.links[site].record(sender, receiver, payload, label=label, bits=bits)
        return payload

    def broadcast(
        self,
        payload: Any,
        *,
        label: str = "",
        bits: int | None = None,
        sites: Iterable[str] | None = None,
    ) -> Any:
        """Send ``payload`` from the coordinator to every site (one round).

        ``bits`` is the per-link cost of the payload (each link carries its
        own copy).  All copies travel downstream, so a broadcast occupies a
        single aggregate round regardless of k.
        """
        for site in self.site_names if sites is None else sites:
            self.send(self.coordinator_name, site, payload, label=label, bits=bits)
        return payload

    # ------------------------------------------------------------ accounting
    @property
    def total_bits(self) -> int:
        """Total bits over all links."""
        return self.log.total_bits

    @property
    def rounds(self) -> int:
        """Aggregate rounds (up/down direction flips)."""
        return self.log.rounds

    def bits_sent_by(self, sender: str) -> int:
        """Total bits sent by one endpoint (a site or the coordinator)."""
        return self.log.bits_sent_by(sender)

    def bits_by_label(self) -> dict[str, int]:
        """Total bits grouped by message label, over all links."""
        return self.log.bits_by_label()

    def bits_per_round(self) -> dict[int, int]:
        """Total bits grouped by aggregate round index."""
        return self.log.bits_per_round()

    def link(self, site_name: str) -> MessageLog:
        """The per-link meter for one coordinator-site link."""
        return self.links[site_name]

    def link_bits(self) -> dict[str, int]:
        """Per-site link load: total bits on each coordinator-site link."""
        return {name: meter.total_bits for name, meter in self.links.items()}

    @property
    def max_link_bits(self) -> int:
        """Load of the busiest coordinator-site link."""
        return max(meter.total_bits for meter in self.links.values())

    # ------------------------------------------------------------- simulation
    def simulate(self) -> tuple[float, dict[int, float]]:
        """Price the recorded transcript: ``(makespan, per-round makespans)``.

        Critical path over rounds under :attr:`conditions`: per round, link
        bursts transfer in parallel and the slowest link gates the round;
        rounds are sequential.  Ideal conditions price every transcript at
        0.0 seconds (per round too) without running the simulation.  Cost
        reports call this once and read both values.
        """
        if self.conditions.is_ideal():
            return 0.0, {round_index: 0.0 for round_index in self.log.bits_per_round()}
        return simulate_makespan(
            self.log.per_round(), self.conditions, self.coordinator_name
        )

    def makespan(self) -> float:
        """Simulated end-to-end seconds of the recorded transcript."""
        total, _ = self.simulate()
        return total

    def makespan_per_round(self) -> dict[int, float]:
        """Simulated seconds per aggregate round (keys match bits_per_round)."""
        _, per_round = self.simulate()
        return per_round

    def reset(self) -> None:
        """Clear all recorded traffic on every link."""
        self.log.reset()
        for meter in self.links.values():
            meter.reset()
