"""Star-topology metered network: k sites around one coordinator.

This is the repo's one physical transport.  The k-party generalization of
the classic two-party channel for the coordinator model of distributed
functional monitoring: messages only travel between a site and the
coordinator (the star's hub) — sites never talk to each other directly,
matching the model in the literature.  The two-party
:class:`repro.comm.channel.Channel` is a view of this class with a single
site (Alice) and the hub playing Bob.

Accounting contract (via the shared
:class:`repro.comm.accounting.MessageLog`):

* an *aggregate* log meters ``total_bits``, ``rounds``, ``bits_by_label``
  and ``bits_per_round`` across the whole star.  Its round counter flips on
  the up/down *direction*: k sites uploading back-to-back share one round
  (they could do so in parallel), while a coordinator reply opens a new one.
  With a single site this reduces exactly to the two-party definition.
* a *per-link* log per site meters the same quantities restricted to that
  coordinator-site link, with the two-party (sender-flip) round semantics.
  ``max_link_bits`` — the busiest link — is a *lower bound* ingredient of
  the simulated makespan when links transfer in parallel.

A network optionally carries :class:`repro.comm.conditions
.NetworkConditions` (per-link latency/bandwidth/jitter models); the
recorded transcript is then priced into a simulated **makespan** — the
critical-path time over rounds, links in parallel — via :meth:`Network
.makespan` / :meth:`Network.makespan_per_round`.  Under the default ideal
conditions both report zeros and nothing about the bit/round meters
changes.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Sequence

import numpy as np

from repro.comm import bitcost
from repro.comm.accounting import MessageLog
from repro.comm.conditions import (
    NetworkConditions,
    simulate_makespan,
    simulate_tree_makespan,
)
from repro.comm.tree import TreeSpec

#: Direction keys for the aggregate round counter.
UPSTREAM = "up"
DOWNSTREAM = "down"


class Network:
    """In-process star network with per-link and aggregate accounting.

    Parameters
    ----------
    site_names:
        Names of the k leaf sites (order fixes the site indexing).
    coordinator_name:
        Name of the hub endpoint.
    conditions:
        Optional per-link timing models (defaults to ideal links: zero
        latency, infinite bandwidth — makespan 0).
    """

    def __init__(
        self,
        site_names: Sequence[str],
        coordinator_name: str = "coordinator",
        *,
        conditions: NetworkConditions | None = None,
    ) -> None:
        site_names = list(site_names)
        if not site_names:
            raise ValueError("a star network needs at least one site")
        if len(set(site_names)) != len(site_names):
            raise ValueError("site names must be unique")
        if coordinator_name in site_names:
            raise ValueError("the coordinator cannot double as a site")
        self.coordinator_name = coordinator_name
        self.site_names = site_names
        self.conditions = conditions if conditions is not None else NetworkConditions()
        self._validate_conditions()
        self.links: dict[str, MessageLog] = {name: MessageLog() for name in site_names}
        self.log = MessageLog()

    def _validate_conditions(self) -> None:
        """Reject condition objects that name no endpoint of this network."""
        unknown = (
            set(self.conditions.overrides)
            - set(self.site_names)
            - self.conditions.dropped
        )
        if unknown:
            # A link override that names no site would be silently priced as
            # the default model — a typo'd straggler scenario must fail loud,
            # like unknown dropped-site declarations do.  Overrides for sites
            # the conditions themselves declare dropped are legitimate: the
            # protocol driver excludes those sites before wiring the star.
            raise ValueError(
                f"link-model overrides {sorted(unknown)} match no site of "
                f"this star (sites: {self.site_names})"
            )
        if self.conditions.regions:
            raise ValueError(
                "per-region conditions only apply to tree networks "
                "(a flat star has no aggregators)"
            )

    # ------------------------------------------------------------------ send
    def send(
        self,
        sender: str,
        receiver: str,
        payload: Any,
        *,
        label: str = "",
        bits: int | None = None,
        universe: int | None = None,
    ) -> Any:
        """Record a message on one coordinator-site link and deliver it.

        Exactly one of ``sender`` / ``receiver`` must be the coordinator —
        the star has no site-to-site links.  ``bits`` defaults to
        :func:`repro.comm.bitcost.bits_for_payload` like the two-party
        channel.
        """
        if sender == receiver:
            raise ValueError("sender and receiver must differ")
        if self.coordinator_name not in (sender, receiver):
            raise ValueError(
                f"star topology: one endpoint must be {self.coordinator_name!r} "
                f"(got {sender!r} -> {receiver!r})"
            )
        direction = DOWNSTREAM if sender == self.coordinator_name else UPSTREAM
        site = receiver if direction == DOWNSTREAM else sender
        if site not in self.links:
            raise ValueError(f"unknown site {site!r}; expected one of {self.site_names}")
        if bits is None:
            bits = bitcost.bits_for_payload(payload, universe=universe)
        self.log.record(sender, receiver, payload, label=label, bits=bits, direction_key=direction)
        self.links[site].record(sender, receiver, payload, label=label, bits=bits)
        return payload

    def broadcast(
        self,
        payload: Any,
        *,
        label: str = "",
        bits: int | None = None,
        sites: Iterable[str] | None = None,
    ) -> Any:
        """Send ``payload`` from the coordinator to every site (one round).

        ``bits`` is the per-link cost of the payload (each link carries its
        own copy).  All copies travel downstream, so a broadcast occupies a
        single aggregate round regardless of k.

        The payload is priced (and, on wire transports, encoded) **once**
        and the result reused for every child — the copies are identical,
        so per-link re-encoding was pure CPU waste at high fan-out.  The
        meters are unchanged: same bits charged on every link.
        """
        if bits is None:
            bits = bitcost.bits_for_payload(payload)
        for site in self.site_names if sites is None else sites:
            self.send(self.coordinator_name, site, payload, label=label, bits=bits)
        return payload

    # ------------------------------------------------------------ accounting
    @property
    def total_bits(self) -> int:
        """Total bits over all links."""
        return self.log.total_bits

    @property
    def rounds(self) -> int:
        """Aggregate rounds (up/down direction flips)."""
        return self.log.rounds

    def bits_sent_by(self, sender: str) -> int:
        """Total bits sent by one endpoint (a site or the coordinator)."""
        return self.log.bits_sent_by(sender)

    def bits_by_label(self) -> dict[str, int]:
        """Total bits grouped by message label, over all links."""
        return self.log.bits_by_label()

    def bits_per_round(self) -> dict[int, int]:
        """Total bits grouped by aggregate round index."""
        return self.log.bits_per_round()

    def link(self, site_name: str) -> MessageLog:
        """The per-link meter for one coordinator-site link."""
        return self.links[site_name]

    def link_bits(self) -> dict[str, int]:
        """Per-site link load: total bits on each coordinator-site link."""
        return {name: meter.total_bits for name, meter in self.links.items()}

    @property
    def max_link_bits(self) -> int:
        """Load of the busiest coordinator-site link."""
        return max(meter.total_bits for meter in self.links.values())

    # ------------------------------------------------------------- simulation
    def simulate(self) -> tuple[float, dict[int, float]]:
        """Price the recorded transcript: ``(makespan, per-round makespans)``.

        Critical path over rounds under :attr:`conditions`: per round, link
        bursts transfer in parallel and the slowest link gates the round;
        rounds are sequential.  Ideal conditions price every transcript at
        0.0 seconds (per round too) without running the simulation.  Cost
        reports call this once and read both values.
        """
        if self.conditions.is_ideal():
            return 0.0, {round_index: 0.0 for round_index in self.log.bits_per_round()}
        return simulate_makespan(
            self.log.per_round(), self.conditions, self.coordinator_name
        )

    def makespan(self) -> float:
        """Simulated end-to-end seconds of the recorded transcript."""
        total, _ = self.simulate()
        return total

    def makespan_per_round(self) -> dict[int, float]:
        """Simulated seconds per aggregate round (keys match bits_per_round)."""
        _, per_round = self.simulate()
        return per_round

    def reset(self) -> None:
        """Clear all recorded traffic on every link."""
        self.log.reset()
        for meter in self.links.values():
            meter.reset()


def _payloads_mergeable(payloads: Sequence[Any]) -> bool:
    """Can a group of sibling payloads be combined into one exact summary?

    Two shapes qualify: same-type :class:`~repro.sketch.mergeable
    .MergeableSketch` partials (the contract the hypothesis suites pin:
    counter states are exact integers in float64, so any merge grouping is
    bit-identical), and equal-shape integer/bool ndarrays (exact sums).
    Anything else — floats, tuples, dicts, mixed groups — is forwarded as
    a batch instead; correctness never rides on a lossy merge.
    """
    from repro.sketch.mergeable import MergeableSketch

    first = payloads[0]
    if isinstance(first, MergeableSketch):
        return all(type(p) is type(first) for p in payloads)
    if isinstance(first, np.ndarray) and first.dtype.kind in "iub":
        return all(
            isinstance(p, np.ndarray)
            and p.shape == first.shape
            and p.dtype == first.dtype
            for p in payloads
        )
    return False


def merge_payload_group(payloads: Sequence[Any]) -> Any:
    """Merge one mergeable sibling group into a single summary.

    Module-level and picklable, so :meth:`repro.engine.runtime.Runtime
    .map_async` can fan per-level merge groups across threads or worker
    processes; the result is executor-invariant because the merges are
    exact (integer states within 2^53).  Sketches merge into a fresh
    ``empty_copy`` — the children's payload objects are never mutated, the
    protocol endpoints may still hold references to them.
    """
    first = payloads[0]
    if isinstance(first, np.ndarray):
        out = first.copy()
        for other in payloads[1:]:
            out += other
        return out
    merged = first.empty_copy()
    for other in payloads:
        merged.merge(other)
    return merged


class TreeNetwork(Network):
    """Metered aggregation tree: sites -> interior aggregators -> root.

    Routing overlay over the same protocol API as the star: endpoints
    still address the coordinator (``send(site, coordinator, ...)``), and
    the network routes each message along the tree edges of a
    :class:`~repro.comm.tree.TreeSpec`.  Upstream payloads **stage** at
    their parent aggregator; when the direction flips (or any meter is
    read) staged sibling groups drain bottom-up, and each aggregator
    forwards ONE message per label upstream:

    * a genuinely merged summary (bits = the largest child burst) when the
      group is exact-mergeable (see :func:`merge_payload_group`), or
    * the batched group (bits = sum of child bursts) otherwise.

    Either way the root's fan-in is ``fan_out`` messages per round instead
    of k, which is the entire point.  Aggregators never touch payload
    *semantics* — protocol bodies use their local variables (the in-process
    network is a metering device that returns the payload), so root
    estimates are bit-identical to the flat star by construction.

    Accounting: :attr:`links` gains one :class:`~repro.comm.accounting
    .MessageLog` per tree edge, keyed by the child endpoint (leaf edges
    under site names, interior edges under aggregator names);
    ``max_link_bits`` is the busiest edge.  The makespan is priced by
    :func:`repro.comm.conditions.simulate_tree_makespan` — serialized
    fan-in per receiver, levels sequential — not the flat-star model.

    ``merge_runtime`` optionally fans each level's merge groups through a
    :class:`repro.engine.runtime.Runtime` executor (serial by default);
    :attr:`merge_seconds` accumulates the aggregation wall-clock either
    way, which is what the scaling benchmark charts.
    """

    def __init__(
        self,
        tree: TreeSpec,
        *,
        conditions: NetworkConditions | None = None,
        merge_runtime: Any | None = None,
    ) -> None:
        self.tree = tree
        super().__init__(tree.site_names, tree.root, conditions=conditions)
        self._site_set = set(tree.site_names)
        for agg in tree.aggregators:
            self.links[agg] = MessageLog()
        self._staged: dict[str, list[tuple[str, Any, int]]] = {
            agg: [] for agg in tree.aggregators
        }
        self.merge_runtime = merge_runtime
        self.merge_seconds = 0.0
        self.merges = 0

    def _validate_conditions(self) -> None:
        valid = set(self.site_names) | set(self.tree.aggregators)
        unknown = set(self.conditions.overrides) - valid - self.conditions.dropped
        if unknown:
            raise ValueError(
                f"link-model overrides {sorted(unknown)} match no edge of "
                f"this tree (sites + aggregators: {sorted(valid)})"
            )
        bad_regions = set(self.conditions.regions) - set(self.tree.aggregators)
        if bad_regions:
            raise ValueError(
                f"region conditions {sorted(bad_regions)} name no aggregator "
                f"of this tree (aggregators: {self.tree.aggregators})"
            )

    # ------------------------------------------------------------------ send
    def send(
        self,
        sender: str,
        receiver: str,
        payload: Any,
        *,
        label: str = "",
        bits: int | None = None,
        universe: int | None = None,
    ) -> Any:
        """Route one coordinator-addressed message along its tree path."""
        if sender == receiver:
            raise ValueError("sender and receiver must differ")
        if self.coordinator_name not in (sender, receiver):
            raise ValueError(
                f"tree topology: one endpoint must be {self.coordinator_name!r} "
                f"(got {sender!r} -> {receiver!r})"
            )
        direction = DOWNSTREAM if sender == self.coordinator_name else UPSTREAM
        site = receiver if direction == DOWNSTREAM else sender
        if site not in self._site_set:
            raise ValueError(f"unknown site {site!r}; expected one of {self.site_names}")
        if bits is None:
            bits = bitcost.bits_for_payload(payload, universe=universe)
        if direction == UPSTREAM:
            self._record_hop(site, UPSTREAM, payload, label, bits)
            parent = self.tree.parent[site]
            if parent != self.coordinator_name:
                self._staged[parent].append((label, payload, bits))
        else:
            self._drain()
            self._deliver_downstream(self.tree.path_edges(site), payload, label, bits)
        return payload

    def broadcast(
        self,
        payload: Any,
        *,
        label: str = "",
        bits: int | None = None,
        sites: Iterable[str] | None = None,
    ) -> Any:
        """Broadcast along the tree: each needed edge carries ONE copy.

        A flat star pays k downstream copies; the tree pays one copy per
        edge on the union of root-to-target paths — aggregators fan the
        payload out locally.  The payload is priced once (encode-once).
        """
        self._drain()
        if bits is None:
            bits = bitcost.bits_for_payload(payload)
        targets = self.site_names if sites is None else list(sites)
        edges: list[str] = []
        seen: set[str] = set()
        for site in targets:
            for child in self.tree.path_edges(site):
                if child not in seen:
                    seen.add(child)
                    edges.append(child)
        self._deliver_downstream(edges, payload, label, bits)
        return payload

    def _deliver_downstream(
        self, edge_children: Sequence[str], payload: Any, label: str, bits: int
    ) -> None:
        """Record one downstream copy per edge (hook for wire transports)."""
        for child in edge_children:
            self._record_hop(child, DOWNSTREAM, payload, label, bits)

    def upstream_hop(
        self, child: str, payload: Any, *, label: str = "", bits: int | None = None
    ) -> Any:
        """Record one upstream burst on a single edge, without staging.

        The streaming session uses this to ship *its own* aggregator-merged
        epoch deltas hop by hop (it re-encodes merged states and knows the
        exact wire bytes of every hop, so the generic staging above would
        be wrong for it).
        """
        if child not in self.links:
            raise ValueError(f"unknown tree edge {child!r}")
        if bits is None:
            bits = bitcost.bits_for_payload(payload)
        self._record_hop(child, UPSTREAM, payload, label, bits)
        return payload

    def _record_hop(
        self, child: str, direction: str, payload: Any, label: str, bits: int
    ) -> None:
        parent = self.tree.parent[child]
        sender, receiver = (child, parent) if direction == UPSTREAM else (parent, child)
        self.log.record(
            sender, receiver, payload, label=label, bits=bits, direction_key=direction
        )
        self.links[child].record(sender, receiver, payload, label=label, bits=bits)

    # ------------------------------------------------------------------ drain
    def _drain(self) -> None:
        """Flush staged uploads bottom-up: one forwarded message per group."""
        if not any(self._staged.values()):
            return
        started = time.perf_counter()
        while any(self._staged.values()):
            depth = max(
                self.tree.node_depth(agg)
                for agg, entries in self._staged.items()
                if entries
            )
            level = [
                agg
                for agg in self.tree.aggregators
                if self.tree.node_depth(agg) == depth and self._staged[agg]
            ]
            # One combined (payload, bits) per (aggregator, label) group.
            plan: list[tuple[str, str]] = []
            grouped: dict[tuple[str, str], list[tuple[Any, int]]] = {}
            for agg in level:
                entries, self._staged[agg] = self._staged[agg], []
                for label, payload, bits in entries:
                    key = (agg, label)
                    if key not in grouped:
                        grouped[key] = []
                        plan.append(key)
                    grouped[key].append((payload, bits))
            merge_keys = [
                key
                for key in plan
                if len(grouped[key]) > 1
                and _payloads_mergeable([p for p, _ in grouped[key]])
            ]
            tasks = [([p for p, _ in grouped[key]],) for key in merge_keys]
            if len(tasks) > 1 and self.merge_runtime is not None:
                # Per-level fan-out: every aggregator at this depth merges
                # concurrently under whatever executor the runtime carries.
                join = self.merge_runtime.map_async(merge_payload_group, tasks)
                merged_results = join()
            else:
                merged_results = [merge_payload_group(*task) for task in tasks]
            self.merges += len(tasks)
            combined: dict[tuple[str, str], tuple[Any, int]] = {}
            for key, merged in zip(merge_keys, merged_results):
                combined[key] = (merged, max(b for _, b in grouped[key]))
            for key in plan:
                if key in combined:
                    continue
                group = grouped[key]
                if len(group) == 1:
                    combined[key] = group[0]
                else:
                    combined[key] = (
                        [p for p, _ in group],
                        sum(b for _, b in group),
                    )
            for agg, label in plan:
                payload, bits = combined[(agg, label)]
                self._record_hop(agg, UPSTREAM, payload, label, bits)
                parent = self.tree.parent[agg]
                if parent != self.coordinator_name:
                    self._staged[parent].append((label, payload, bits))
        self.merge_seconds += time.perf_counter() - started

    # ------------------------------------------------------------ accounting
    @property
    def total_bits(self) -> int:
        self._drain()
        return self.log.total_bits

    @property
    def rounds(self) -> int:
        self._drain()
        return self.log.rounds

    def bits_sent_by(self, sender: str) -> int:
        self._drain()
        return self.log.bits_sent_by(sender)

    def bits_by_label(self) -> dict[str, int]:
        self._drain()
        return self.log.bits_by_label()

    def bits_per_round(self) -> dict[int, int]:
        self._drain()
        return self.log.bits_per_round()

    def link(self, site_name: str) -> MessageLog:
        self._drain()
        return self.links[site_name]

    def link_bits(self) -> dict[str, int]:
        self._drain()
        return {name: meter.total_bits for name, meter in self.links.items()}

    @property
    def max_link_bits(self) -> int:
        self._drain()
        return max(meter.total_bits for meter in self.links.values())

    def root_link_bits(self) -> dict[str, int]:
        """Bits on the root's ingress edges only — the fan-in bottleneck."""
        self._drain()
        return {
            child: self.links[child].total_bits
            for child in self.tree.children[self.tree.root]
        }

    @property
    def max_root_link_bits(self) -> int:
        """Busiest root ingress edge (grows with fan-out, not with k)."""
        return max(self.root_link_bits().values())

    # ------------------------------------------------------------- simulation
    def simulate(self) -> tuple[float, dict[int, float]]:
        """Price the tree transcript: serialized fan-in, levels sequential."""
        self._drain()
        if self.conditions.is_ideal():
            return 0.0, {round_index: 0.0 for round_index in self.log.bits_per_round()}
        return simulate_tree_makespan(self.log.per_round(), self.conditions, self.tree)

    def reset(self) -> None:
        for agg in self._staged:
            self._staged[agg] = []
        super().reset()
        self.merge_seconds = 0.0
        self.merges = 0
