"""The metered channel between Alice and Bob.

Since the engine unification there is only one physical transport in the
repo — the star :class:`repro.comm.network.Network` — and a :class:`Channel`
is literally a two-party *view* of it: Alice is the star's single leaf site
and Bob is the hub.  With one site the network's up/down round counter
coincides with the classic two-party definition (consecutive messages in
the same direction share a round; the counter increments each time the
direction flips, and the first message opens round 1), so the view changes
nothing about the accounting contract.

The accounting itself (message records, round counter, per-label and
per-round breakdowns) lives in :class:`repro.comm.accounting.MessageLog`.
"""

from __future__ import annotations

from typing import Any

from repro.comm.accounting import Message, MessageLog
from repro.comm.conditions import NetworkConditions
from repro.comm.network import Network

__all__ = ["Channel", "Message"]


class Channel:
    """In-process two-party channel with bit and round accounting.

    Parameters
    ----------
    alice_name, bob_name:
        Display names for the two endpoints; used for per-party accounting.
        Alice backs the underlying star's single site, Bob its hub.
    conditions:
        Optional timing model of the single link (see
        :mod:`repro.comm.conditions`); forwarded to the backing network so
        two-party transcripts can be priced into a simulated makespan too.
    """

    def __init__(
        self,
        alice_name: str = "alice",
        bob_name: str = "bob",
        *,
        conditions: "NetworkConditions | None" = None,
    ) -> None:
        self.alice_name = alice_name
        self.bob_name = bob_name
        self.network = Network(
            [alice_name], coordinator_name=bob_name, conditions=conditions
        )

    # ------------------------------------------------------------------ send
    def send(
        self,
        sender: str,
        receiver: str,
        payload: Any,
        *,
        label: str = "",
        bits: int | None = None,
        universe: int | None = None,
    ) -> Any:
        """Record a message from ``sender`` to ``receiver`` and deliver it.

        Parameters
        ----------
        payload:
            The object being transmitted.  It is returned unchanged so the
            caller (the protocol driver) can hand it to the receiving party.
        bits:
            Explicit bit cost.  If omitted, a cost is derived from the payload
            via :func:`repro.comm.bitcost.bits_for_payload`.
        universe:
            Universe size used when costing index lists.
        """
        known = {self.alice_name, self.bob_name}
        if sender != receiver and (sender not in known or receiver not in known):
            raise ValueError(f"unknown endpoint; expected one of {sorted(known)}")
        return self.network.send(
            sender, receiver, payload, label=label, bits=bits, universe=universe
        )

    # ------------------------------------------------------------ accounting
    @property
    def log(self) -> MessageLog:
        """The underlying (aggregate) message log."""
        return self.network.log

    @property
    def messages(self) -> list[Message]:
        """All messages recorded so far, in order."""
        return self.network.log.messages

    @property
    def total_bits(self) -> int:
        """Total bits recorded so far."""
        return self.network.total_bits

    @property
    def rounds(self) -> int:
        """Number of rounds used so far (maximal direction flips)."""
        return self.network.rounds

    def bits_sent_by(self, sender: str) -> int:
        """Total bits sent by one endpoint."""
        return self.network.bits_sent_by(sender)

    def bits_by_label(self) -> dict[str, int]:
        """Total bits grouped by message label (for cost breakdowns)."""
        return self.network.bits_by_label()

    def bits_per_round(self) -> dict[int, int]:
        """Total bits grouped by round index (1-based, ascending)."""
        return self.network.bits_per_round()

    def makespan(self) -> float:
        """Simulated seconds of the transcript under the channel's conditions."""
        return self.network.makespan()

    def reset(self) -> None:
        """Clear all recorded traffic (used when reusing a transport)."""
        self.network.reset()
