"""The metered channel between Alice and Bob.

A :class:`Channel` records every message (sender, receiver, label, bit cost)
and maintains the round counter.  A *round* follows the standard definition:
consecutive messages in the same direction belong to the same round; the
round counter increases each time the direction of communication flips
(the first message starts round 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.comm import bitcost


@dataclass
class Message:
    """One message recorded on the channel."""

    sender: str
    receiver: str
    label: str
    bits: int
    round_index: int
    payload: Any = field(repr=False, default=None)


class Channel:
    """In-process two-party channel with bit and round accounting.

    Parameters
    ----------
    alice_name, bob_name:
        Display names for the two endpoints; used for per-party accounting.
    """

    def __init__(self, alice_name: str = "alice", bob_name: str = "bob") -> None:
        self.alice_name = alice_name
        self.bob_name = bob_name
        self.messages: list[Message] = []
        self._last_sender: str | None = None
        self._round = 0

    # ------------------------------------------------------------------ send
    def send(
        self,
        sender: str,
        receiver: str,
        payload: Any,
        *,
        label: str = "",
        bits: int | None = None,
        universe: int | None = None,
    ) -> Any:
        """Record a message from ``sender`` to ``receiver`` and deliver it.

        Parameters
        ----------
        payload:
            The object being transmitted.  It is returned unchanged so the
            caller (the protocol driver) can hand it to the receiving party.
        bits:
            Explicit bit cost.  If omitted, a cost is derived from the payload
            via :func:`repro.comm.bitcost.bits_for_payload`.
        universe:
            Universe size used when costing index lists.
        """
        if sender == receiver:
            raise ValueError("sender and receiver must differ")
        known = {self.alice_name, self.bob_name}
        if sender not in known or receiver not in known:
            raise ValueError(f"unknown endpoint; expected one of {sorted(known)}")
        if bits is None:
            bits = bitcost.bits_for_payload(payload, universe=universe)
        if bits < 0:
            raise ValueError("bit cost must be non-negative")
        if sender != self._last_sender:
            self._round += 1
            self._last_sender = sender
        self.messages.append(
            Message(
                sender=sender,
                receiver=receiver,
                label=label,
                bits=int(bits),
                round_index=self._round,
                payload=payload,
            )
        )
        return payload

    # ------------------------------------------------------------ accounting
    @property
    def total_bits(self) -> int:
        """Total bits sent by both parties."""
        return sum(message.bits for message in self.messages)

    @property
    def rounds(self) -> int:
        """Number of rounds used so far (maximal direction flips)."""
        return self._round

    def bits_sent_by(self, sender: str) -> int:
        """Total bits sent by one endpoint."""
        return sum(message.bits for message in self.messages if message.sender == sender)

    def bits_by_label(self) -> dict[str, int]:
        """Total bits grouped by message label (for cost breakdowns)."""
        breakdown: dict[str, int] = {}
        for message in self.messages:
            breakdown[message.label] = breakdown.get(message.label, 0) + message.bits
        return breakdown

    def reset(self) -> None:
        """Clear all recorded traffic (used when reusing a channel)."""
        self.messages.clear()
        self._last_sender = None
        self._round = 0
