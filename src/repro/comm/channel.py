"""The metered channel between Alice and Bob.

A :class:`Channel` records every message (sender, receiver, label, bit cost)
and maintains the round counter.  A *round* follows the standard definition:
consecutive messages in the same direction belong to the same round; the
round counter increases each time the direction of communication flips
(the first message starts round 1).

The accounting itself (message records, round counter, per-label and
per-round breakdowns) lives in :class:`repro.comm.accounting.MessageLog`,
which is shared with the k-party :class:`repro.multiparty.network.Network`.
"""

from __future__ import annotations

from typing import Any

from repro.comm import bitcost
from repro.comm.accounting import Message, MessageLog

__all__ = ["Channel", "Message"]


class Channel(MessageLog):
    """In-process two-party channel with bit and round accounting.

    Parameters
    ----------
    alice_name, bob_name:
        Display names for the two endpoints; used for per-party accounting.
    """

    def __init__(self, alice_name: str = "alice", bob_name: str = "bob") -> None:
        super().__init__()
        self.alice_name = alice_name
        self.bob_name = bob_name

    # ------------------------------------------------------------------ send
    def send(
        self,
        sender: str,
        receiver: str,
        payload: Any,
        *,
        label: str = "",
        bits: int | None = None,
        universe: int | None = None,
    ) -> Any:
        """Record a message from ``sender`` to ``receiver`` and deliver it.

        Parameters
        ----------
        payload:
            The object being transmitted.  It is returned unchanged so the
            caller (the protocol driver) can hand it to the receiving party.
        bits:
            Explicit bit cost.  If omitted, a cost is derived from the payload
            via :func:`repro.comm.bitcost.bits_for_payload`.
        universe:
            Universe size used when costing index lists.
        """
        if sender == receiver:
            raise ValueError("sender and receiver must differ")
        known = {self.alice_name, self.bob_name}
        if sender not in known or receiver not in known:
            raise ValueError(f"unknown endpoint; expected one of {sorted(known)}")
        if bits is None:
            bits = bitcost.bits_for_payload(payload, universe=universe)
        self.record(sender, receiver, payload, label=label, bits=bits)
        return payload
