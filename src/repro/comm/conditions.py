"""Simulated network conditions: per-link latency/bandwidth models + makespan.

The metered transports count *bits* and *rounds* exactly; this module turns
those meters into an end-to-end **time** estimate.  A :class:`LinkModel`
describes one coordinator-site link (fixed per-round latency, finite
bandwidth, optional seeded jitter); :class:`NetworkConditions` assigns a
model to every link of a star (one default plus per-site overrides) and
also carries the *fault scenario* — which sites are declared dropped — so
a whole experimental condition travels as one object.

Makespan model
--------------
Links of a star transfer **in parallel**, and the round structure of the
message log is exactly the synchronization structure of the protocol: all
messages of one round could be in flight simultaneously, but round ``r+1``
cannot start before every link of round ``r`` has delivered (the hub needs
the uploads before it can reply, and vice versa).  So the simulated
makespan is the critical path over rounds::

    makespan = sum over rounds r of  max over links s active in r of
               latency_s + jitter_s(r) + bits_{s,r} / bandwidth_s

Messages on the same link in the same round share one latency hit (they
form a single burst).  Jitter is drawn deterministically per (site, round)
from a seeded stream, so a given ``NetworkConditions`` object prices a
given transcript identically every time it is asked.

With the default (ideal) conditions every link has zero latency and
infinite bandwidth, so the makespan of every existing transcript is 0.0
and nothing about the recorded cost reports changes.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.comm.accounting import Message
from repro.comm.tree import TreeSpec

__all__ = [
    "IDEAL_LINK",
    "LinkModel",
    "NetworkConditions",
    "simulate_makespan",
    "simulate_tree_makespan",
]


@dataclass(frozen=True)
class LinkModel:
    """Timing model of one coordinator-site link.

    Parameters
    ----------
    latency:
        Fixed seconds added once per round in which the link is active
        (propagation delay; a *straggler* site is modelled by a large
        per-site latency override).
    bandwidth:
        Link throughput in bits per second (``inf`` = transfer is free).
    jitter:
        Upper bound of a uniform extra per-round delay in seconds, drawn
        from the seeded stream of the enclosing :class:`NetworkConditions`.
    """

    latency: float = 0.0
    bandwidth: float = math.inf
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0 or math.isnan(self.latency):
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.bandwidth <= 0 or math.isnan(self.bandwidth):
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth}")
        if self.jitter < 0 or math.isnan(self.jitter):
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    def transfer_seconds(self, bits: int) -> float:
        """Seconds to push ``bits`` through this link in one round (no jitter)."""
        if math.isinf(self.bandwidth):
            return self.latency
        return self.latency + bits / self.bandwidth


#: The default: zero latency, infinite bandwidth, no jitter — makespan 0.
IDEAL_LINK = LinkModel()


class NetworkConditions:
    """One experimental condition of a star network.

    Parameters
    ----------
    default:
        The :class:`LinkModel` of every link without an override.
    overrides:
        Per-site link models, keyed by site name (e.g. one straggler).
    dropped:
        Site names declared *dropped* for this condition.  The transports
        themselves never consult this — dropout is a protocol-level policy
        (see :class:`repro.engine.runtime.Runtime` and
        ``StreamingSession.drop_site``) — but carrying it here keeps the
        whole scenario in one object.
    jitter_seed:
        Seed of the deterministic per-(site, round) jitter stream.
    deadline:
        Per-site response deadline in simulated seconds.  A site whose
        link latency exceeds the deadline is a *straggler*: quorum-mode
        runtimes (:class:`repro.engine.runtime.Runtime` with ``quorum=``)
        answer without it, and streaming sessions fold its delta in late
        (see ``StreamingSession``).  ``None`` (default) disables the
        deadline; like ``dropped``, the transports never consult it.
    faults:
        Optional :class:`repro.engine.robust.FaultPlan` — the declarative
        corruption scenario (site → adversary) applied by the engine to
        the named sites' uploaded summaries.  Carried here, untouched, so
        a Byzantine condition is one object alongside timing and dropout.
    regions:
        Per-*region* link models for aggregation trees, keyed by
        aggregator name: an edge without an exact override inherits the
        model of its nearest enclosing region aggregator before falling
        back to ``default``.  Star networks reject non-empty regions (they
        have no aggregators); see :class:`repro.comm.network.TreeNetwork`.
    """

    def __init__(
        self,
        default: LinkModel = IDEAL_LINK,
        *,
        overrides: Mapping[str, LinkModel] | None = None,
        dropped: Iterable[str] = (),
        jitter_seed: int = 0,
        deadline: float | None = None,
        faults=None,
        regions: Mapping[str, LinkModel] | None = None,
    ) -> None:
        self.default = default
        self.overrides = dict(overrides or {})
        self.dropped = frozenset(dropped)
        self.jitter_seed = int(jitter_seed)
        if deadline is not None and (deadline <= 0 or math.isnan(deadline)):
            raise ValueError(f"deadline must be > 0 seconds, got {deadline}")
        self.deadline = None if deadline is None else float(deadline)
        self.faults = faults
        self.regions = dict(regions or {})

    def link(self, site_name: str) -> LinkModel:
        """The model governing one coordinator-site link."""
        return self.overrides.get(site_name, self.default)

    def edge_link(self, child_name: str, ancestors: Sequence[str] = ()) -> LinkModel:
        """The model governing one tree edge (keyed by its child endpoint).

        Resolution order: exact per-endpoint override, then the nearest
        enclosing region aggregator (``ancestors`` nearest-first, as
        :meth:`repro.comm.tree.TreeSpec.ancestors` yields them — the edge's
        own child counts as its first candidate region when it is an
        aggregator), then :attr:`default`.
        """
        if child_name in self.overrides:
            return self.overrides[child_name]
        if self.regions:
            for region in (child_name, *ancestors):
                if region in self.regions:
                    return self.regions[region]
        return self.default

    def link_seconds(self, site_name: str, round_index: int, bits: int) -> float:
        """Time for one link's burst in one round, jitter included.

        Jitter is a pure function of ``(jitter_seed, site_name,
        round_index)``, so re-pricing the same transcript with the same
        conditions always yields the same makespan.
        """
        model = self.link(site_name)
        return model.transfer_seconds(bits) + self.jitter_seconds(
            site_name, round_index, model
        )

    def jitter_seconds(self, name: str, round_index: int, model: LinkModel) -> float:
        """The deterministic jitter draw for one (endpoint, round) burst."""
        if model.jitter <= 0:
            return 0.0
        entropy = [self.jitter_seed, zlib.crc32(name.encode()), round_index]
        draw = np.random.default_rng(np.random.SeedSequence(entropy))
        return float(draw.uniform(0.0, model.jitter))

    def excluding(self, names: Iterable[str]) -> "NetworkConditions":
        """A copy with ``names`` additionally declared dropped.

        Quorum-mode drivers exclude stragglers before wiring the sub-star;
        folding them into ``dropped`` keeps their link overrides legitimate
        under :class:`repro.comm.network.Network`'s typo check, exactly
        like pre-declared dropped sites.
        """
        names = frozenset(names)
        if not names:
            return self
        return NetworkConditions(
            self.default,
            overrides=self.overrides,
            dropped=self.dropped | names,
            jitter_seed=self.jitter_seed,
            deadline=self.deadline,
            faults=self.faults,
            regions=self.regions,
        )

    def is_ideal(self) -> bool:
        """True when every link is the ideal model (makespan trivially 0)."""
        return self.default == IDEAL_LINK and not self.overrides and not self.regions

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        parts = [f"default={self.default}"]
        if self.overrides:
            parts.append(f"overrides={self.overrides}")
        if self.dropped:
            parts.append(f"dropped={sorted(self.dropped)}")
        if self.regions:
            parts.append(f"regions={self.regions}")
        if self.deadline is not None:
            parts.append(f"deadline={self.deadline}")
        if self.faults is not None:
            parts.append(f"faults={self.faults}")
        return f"NetworkConditions({', '.join(parts)})"


def simulate_makespan(
    rounds: Mapping[int, Iterable[Message]],
    conditions: NetworkConditions,
    coordinator_name: str,
) -> tuple[float, dict[int, float]]:
    """Price a recorded transcript under the given conditions.

    ``rounds`` is the round grouping a :class:`repro.comm.accounting
    .MessageLog` exposes via :meth:`~repro.comm.accounting.MessageLog
    .per_round`.  Returns ``(total makespan seconds, per-round
    makespans)``.  Each message is attributed to its coordinator-site link
    (the non-hub endpoint); per round, link bursts transfer in parallel,
    so the round's time is the maximum over its active links, and rounds
    are sequential.
    """
    per_round: dict[int, float] = {}
    for round_index, messages in sorted(rounds.items()):
        link_bits: dict[str, int] = {}
        for message in messages:
            site = (
                message.receiver
                if message.sender == coordinator_name
                else message.sender
            )
            link_bits[site] = link_bits.get(site, 0) + message.bits
        per_round[round_index] = max(
            conditions.link_seconds(site, round_index, bits)
            for site, bits in link_bits.items()
        )
    return sum(per_round.values()), per_round


def simulate_tree_makespan(
    rounds: Mapping[int, Iterable[Message]],
    conditions: NetworkConditions,
    tree: TreeSpec,
) -> tuple[float, dict[int, float]]:
    """Price a *tree* transcript: multi-level critical path, serialized fan-in.

    This is deliberately a different pricing model from the flat-star
    :func:`simulate_makespan` (whose parallel-links semantics are pinned by
    the existing experiments and stay untouched).  A tree transcript is
    priced the way a hierarchy actually drains:

    * every message belongs to one tree **edge**, keyed by its child
      endpoint; the edge's :class:`LinkModel` resolves via
      :meth:`NetworkConditions.edge_link` (override > nearest region >
      default);
    * per round, messages group by **receiver node**.  A node's ingress is
      serialized — propagation overlaps, payload drain does not — so its
      time is ``max(latency + jitter over incoming edges) + sum(bits /
      bandwidth over incoming edges)``.  This is exactly the fan-in
      bottleneck the tree exists to break: a flat root receives k bursts
      back to back, a fan-out-F node only F;
    * nodes at the same depth work in parallel, while levels are
      sequential (a parent cannot forward before its children delivered),
      so the round's time is the sum over depths of the slowest receiver
      at that depth.

    Pricing a depth-1 :class:`~repro.comm.tree.TreeSpec` under this model
    is the honest "flat star" baseline the scaling experiments compare
    against: all k uploads serialize into the root.
    """
    per_round: dict[int, float] = {}
    for round_index, messages in sorted(rounds.items()):
        # receiver node -> child-endpoint edge -> bits of its burst
        ingress: dict[str, dict[str, int]] = {}
        for message in messages:
            if tree.parent.get(message.sender) == message.receiver:
                child = message.sender
            elif tree.parent.get(message.receiver) == message.sender:
                child = message.receiver
            else:  # pragma: no cover - guarded by TreeNetwork routing
                raise ValueError(
                    f"message {message.sender!r} -> {message.receiver!r} "
                    "travels no edge of the tree"
                )
            edges = ingress.setdefault(message.receiver, {})
            edges[child] = edges.get(child, 0) + message.bits
        depth_time: dict[int, float] = {}
        for receiver, edges in ingress.items():
            latency = 0.0
            drain = 0.0
            for child, bits in edges.items():
                model = conditions.edge_link(child, tree.ancestors(child))
                latency = max(
                    latency,
                    model.latency
                    + conditions.jitter_seconds(child, round_index, model),
                )
                if not math.isinf(model.bandwidth):
                    drain += bits / model.bandwidth
            node_time = latency + drain
            depth = tree.node_depth(receiver)
            depth_time[depth] = max(depth_time.get(depth, 0.0), node_time)
        per_round[round_index] = sum(depth_time.values())
    return sum(per_round.values()), per_round
