"""Simulated network conditions: per-link latency/bandwidth models + makespan.

The metered transports count *bits* and *rounds* exactly; this module turns
those meters into an end-to-end **time** estimate.  A :class:`LinkModel`
describes one coordinator-site link (fixed per-round latency, finite
bandwidth, optional seeded jitter); :class:`NetworkConditions` assigns a
model to every link of a star (one default plus per-site overrides) and
also carries the *fault scenario* — which sites are declared dropped — so
a whole experimental condition travels as one object.

Makespan model
--------------
Links of a star transfer **in parallel**, and the round structure of the
message log is exactly the synchronization structure of the protocol: all
messages of one round could be in flight simultaneously, but round ``r+1``
cannot start before every link of round ``r`` has delivered (the hub needs
the uploads before it can reply, and vice versa).  So the simulated
makespan is the critical path over rounds::

    makespan = sum over rounds r of  max over links s active in r of
               latency_s + jitter_s(r) + bits_{s,r} / bandwidth_s

Messages on the same link in the same round share one latency hit (they
form a single burst).  Jitter is drawn deterministically per (site, round)
from a seeded stream, so a given ``NetworkConditions`` object prices a
given transcript identically every time it is asked.

With the default (ideal) conditions every link has zero latency and
infinite bandwidth, so the makespan of every existing transcript is 0.0
and nothing about the recorded cost reports changes.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.comm.accounting import Message

__all__ = ["IDEAL_LINK", "LinkModel", "NetworkConditions", "simulate_makespan"]


@dataclass(frozen=True)
class LinkModel:
    """Timing model of one coordinator-site link.

    Parameters
    ----------
    latency:
        Fixed seconds added once per round in which the link is active
        (propagation delay; a *straggler* site is modelled by a large
        per-site latency override).
    bandwidth:
        Link throughput in bits per second (``inf`` = transfer is free).
    jitter:
        Upper bound of a uniform extra per-round delay in seconds, drawn
        from the seeded stream of the enclosing :class:`NetworkConditions`.
    """

    latency: float = 0.0
    bandwidth: float = math.inf
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0 or math.isnan(self.latency):
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.bandwidth <= 0 or math.isnan(self.bandwidth):
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth}")
        if self.jitter < 0 or math.isnan(self.jitter):
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    def transfer_seconds(self, bits: int) -> float:
        """Seconds to push ``bits`` through this link in one round (no jitter)."""
        if math.isinf(self.bandwidth):
            return self.latency
        return self.latency + bits / self.bandwidth


#: The default: zero latency, infinite bandwidth, no jitter — makespan 0.
IDEAL_LINK = LinkModel()


class NetworkConditions:
    """One experimental condition of a star network.

    Parameters
    ----------
    default:
        The :class:`LinkModel` of every link without an override.
    overrides:
        Per-site link models, keyed by site name (e.g. one straggler).
    dropped:
        Site names declared *dropped* for this condition.  The transports
        themselves never consult this — dropout is a protocol-level policy
        (see :class:`repro.engine.runtime.Runtime` and
        ``StreamingSession.drop_site``) — but carrying it here keeps the
        whole scenario in one object.
    jitter_seed:
        Seed of the deterministic per-(site, round) jitter stream.
    deadline:
        Per-site response deadline in simulated seconds.  A site whose
        link latency exceeds the deadline is a *straggler*: quorum-mode
        runtimes (:class:`repro.engine.runtime.Runtime` with ``quorum=``)
        answer without it, and streaming sessions fold its delta in late
        (see ``StreamingSession``).  ``None`` (default) disables the
        deadline; like ``dropped``, the transports never consult it.
    faults:
        Optional :class:`repro.engine.robust.FaultPlan` — the declarative
        corruption scenario (site → adversary) applied by the engine to
        the named sites' uploaded summaries.  Carried here, untouched, so
        a Byzantine condition is one object alongside timing and dropout.
    """

    def __init__(
        self,
        default: LinkModel = IDEAL_LINK,
        *,
        overrides: Mapping[str, LinkModel] | None = None,
        dropped: Iterable[str] = (),
        jitter_seed: int = 0,
        deadline: float | None = None,
        faults=None,
    ) -> None:
        self.default = default
        self.overrides = dict(overrides or {})
        self.dropped = frozenset(dropped)
        self.jitter_seed = int(jitter_seed)
        if deadline is not None and (deadline <= 0 or math.isnan(deadline)):
            raise ValueError(f"deadline must be > 0 seconds, got {deadline}")
        self.deadline = None if deadline is None else float(deadline)
        self.faults = faults

    def link(self, site_name: str) -> LinkModel:
        """The model governing one coordinator-site link."""
        return self.overrides.get(site_name, self.default)

    def link_seconds(self, site_name: str, round_index: int, bits: int) -> float:
        """Time for one link's burst in one round, jitter included.

        Jitter is a pure function of ``(jitter_seed, site_name,
        round_index)``, so re-pricing the same transcript with the same
        conditions always yields the same makespan.
        """
        model = self.link(site_name)
        seconds = model.transfer_seconds(bits)
        if model.jitter > 0:
            entropy = [self.jitter_seed, zlib.crc32(site_name.encode()), round_index]
            draw = np.random.default_rng(np.random.SeedSequence(entropy))
            seconds += float(draw.uniform(0.0, model.jitter))
        return seconds

    def excluding(self, names: Iterable[str]) -> "NetworkConditions":
        """A copy with ``names`` additionally declared dropped.

        Quorum-mode drivers exclude stragglers before wiring the sub-star;
        folding them into ``dropped`` keeps their link overrides legitimate
        under :class:`repro.comm.network.Network`'s typo check, exactly
        like pre-declared dropped sites.
        """
        names = frozenset(names)
        if not names:
            return self
        return NetworkConditions(
            self.default,
            overrides=self.overrides,
            dropped=self.dropped | names,
            jitter_seed=self.jitter_seed,
            deadline=self.deadline,
            faults=self.faults,
        )

    def is_ideal(self) -> bool:
        """True when every link is the ideal model (makespan trivially 0)."""
        return self.default == IDEAL_LINK and not self.overrides

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        parts = [f"default={self.default}"]
        if self.overrides:
            parts.append(f"overrides={self.overrides}")
        if self.dropped:
            parts.append(f"dropped={sorted(self.dropped)}")
        if self.deadline is not None:
            parts.append(f"deadline={self.deadline}")
        if self.faults is not None:
            parts.append(f"faults={self.faults}")
        return f"NetworkConditions({', '.join(parts)})"


def simulate_makespan(
    rounds: Mapping[int, Iterable[Message]],
    conditions: NetworkConditions,
    coordinator_name: str,
) -> tuple[float, dict[int, float]]:
    """Price a recorded transcript under the given conditions.

    ``rounds`` is the round grouping a :class:`repro.comm.accounting
    .MessageLog` exposes via :meth:`~repro.comm.accounting.MessageLog
    .per_round`.  Returns ``(total makespan seconds, per-round
    makespans)``.  Each message is attributed to its coordinator-site link
    (the non-hub endpoint); per round, link bursts transfer in parallel,
    so the round's time is the maximum over its active links, and rounds
    are sequential.
    """
    per_round: dict[int, float] = {}
    for round_index, messages in sorted(rounds.items()):
        link_bits: dict[str, int] = {}
        for message in messages:
            site = (
                message.receiver
                if message.sender == coordinator_name
                else message.sender
            )
            link_bits[site] = link_bits.get(site, 0) + message.bits
        per_round[round_index] = max(
            conditions.link_seconds(site, round_index, bits)
            for site, bits in link_bits.items()
        )
    return sum(per_round.values()), per_round
