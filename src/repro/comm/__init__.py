"""Two-party communication substrate.

The paper analyses protocols in the classic two-party communication model:
Alice holds matrix ``A``, Bob holds matrix ``B``, and they exchange messages
over a channel.  The quantities the theorems bound are (i) the total number
of bits exchanged and (ii) the number of rounds of interaction.

This package provides an in-process simulation of that model:

* :mod:`repro.comm.bitcost` — the single place where "how many bits does this
  payload cost" is defined, so the accounting assumptions are auditable.
* :mod:`repro.comm.accounting` — the message log and direction-flip round
  counter shared by every metered transport.
* :class:`repro.comm.network.Network` — the star-topology transport (k
  sites around a coordinator) with per-link and aggregate meters; the one
  physical transport in the repo.
* :class:`repro.comm.channel.Channel` — the two-party view of a one-leaf
  star: moves payloads between Alice and Bob while metering bits and
  rounds.
* :class:`repro.comm.party.Party` — base class for Alice/Bob endpoints.
* :class:`repro.comm.protocol.Protocol` — driver that runs a protocol and
  returns a :class:`repro.comm.protocol.CostReport`.
* :mod:`repro.comm.conditions` — per-link latency/bandwidth/jitter models
  (:class:`repro.comm.conditions.LinkModel` /
  :class:`repro.comm.conditions.NetworkConditions`) that price a recorded
  transcript into a simulated makespan.
"""

from repro.comm.accounting import Message, MessageLog
from repro.comm.bitcost import (
    bits_for_float,
    bits_for_index,
    bits_for_index_list,
    bits_for_int,
    bits_for_matrix,
    bits_for_payload,
    bits_for_vector,
)
from repro.comm.channel import Channel
from repro.comm.conditions import IDEAL_LINK, LinkModel, NetworkConditions
from repro.comm.network import Network, TreeNetwork
from repro.comm.party import Party
from repro.comm.protocol import CostReport, Protocol, ProtocolResult
from repro.comm.tree import TreeSpec

__all__ = [
    "bits_for_float",
    "bits_for_index",
    "bits_for_index_list",
    "bits_for_int",
    "bits_for_matrix",
    "bits_for_payload",
    "bits_for_vector",
    "Channel",
    "IDEAL_LINK",
    "LinkModel",
    "Message",
    "MessageLog",
    "Network",
    "TreeNetwork",
    "TreeSpec",
    "NetworkConditions",
    "Party",
    "CostReport",
    "Protocol",
    "ProtocolResult",
]
