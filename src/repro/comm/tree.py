"""Aggregation-tree shapes: the topology object behind hierarchical stars.

A :class:`TreeSpec` is a pure *shape*: leaves are the protocol sites, the
root is the coordinator, and interior **aggregator** nodes group subtrees
of sites.  It carries no state and meters nothing — the metered overlay
lives in :class:`repro.comm.network.TreeNetwork`, and the wired endpoints
in :class:`repro.engine.topology.TreeTopology`.  Keeping the shape separate
means the same spec object can describe an in-process tree, a socket tree
(service layer), and a streaming tree.

The flat star is the depth-1 special case (:meth:`TreeSpec.flat`): no
aggregators, every site a direct child of the root.  :meth:`TreeSpec
.regular` builds the balanced fan-out-``F`` tree used by the scaling
experiments; :meth:`TreeSpec.from_grouping` accepts an arbitrary nested
grouping of site indices, which is how the hypothesis property suite
explores random shapes.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

__all__ = ["TreeSpec"]


class TreeSpec:
    """Shape of an aggregation tree over named sites.

    Parameters
    ----------
    children_of:
        Mapping from the root and every aggregator to its ordered children
        (aggregator or site names).  Every node except the root must appear
        exactly once as somebody's child; names never listed as keys are
        the leaves (sites).
    root:
        Name of the root (the coordinator endpoint).
    site_names:
        Optional explicit leaf ordering; defaults to depth-first discovery
        order.  When given it must be a permutation-free match of the
        leaves found in ``children_of`` (same names, caller's order).
    """

    def __init__(
        self,
        children_of: Mapping[str, Sequence[str]],
        *,
        root: str = "coordinator",
        site_names: Sequence[str] | None = None,
    ) -> None:
        children = {name: tuple(kids) for name, kids in children_of.items()}
        if root not in children:
            raise ValueError(f"tree root {root!r} has no children entry")
        seen: dict[str, str] = {}
        for parent, kids in children.items():
            if not kids:
                raise ValueError(f"tree node {parent!r} has no children")
            for kid in kids:
                if kid in seen:
                    raise ValueError(f"tree node {kid!r} has two parents")
                if kid == root:
                    raise ValueError("the root cannot be a child")
                seen[kid] = parent
        orphans = (set(children) - {root}) - set(seen)
        if orphans:
            raise ValueError(f"aggregators {sorted(orphans)} are unreachable from the root")
        self.root = root
        self.parent: dict[str, str] = seen
        self.children: dict[str, tuple[str, ...]] = children
        # Depth-first discovery fixes a deterministic order for leaves and
        # aggregators alike (aggregators top-down, which _drain relies on).
        leaves: list[str] = []
        aggregators: list[str] = []
        stack = [root]
        while stack:
            node = stack.pop()
            if node in children:
                if node != root:
                    aggregators.append(node)
                stack.extend(reversed(children[node]))
            else:
                leaves.append(node)
        if site_names is not None:
            site_names = list(site_names)
            if sorted(site_names) != sorted(leaves):
                raise ValueError(
                    "site_names must name exactly the leaves of the tree "
                    f"(leaves: {sorted(leaves)})"
                )
            leaves = site_names
        self.site_names: list[str] = leaves
        #: Aggregators in depth-first (top-down within a branch) order.
        self.aggregators: list[str] = aggregators
        self._depth = {root: 0}
        for node in aggregators + leaves:
            self._depth[node] = self._depth[self.parent[node]] + 1

    # ---------------------------------------------------------------- shape
    @property
    def is_flat(self) -> bool:
        """True for the depth-1 star (no aggregators)."""
        return not self.aggregators

    @property
    def depth(self) -> int:
        """Maximum leaf depth (1 for the flat star)."""
        return max(self._depth[name] for name in self.site_names)

    @property
    def fan_out(self) -> int:
        """Maximum number of children of any interior node (root included)."""
        return max(len(kids) for kids in self.children.values())

    def node_depth(self, name: str) -> int:
        """Depth of one node (root = 0)."""
        return self._depth[name]

    def ancestors(self, name: str) -> list[str]:
        """Aggregators above ``name``, nearest first (root excluded)."""
        chain = []
        node = self.parent[name]
        while node != self.root:
            chain.append(node)
            node = self.parent[node]
        return chain

    def path_edges(self, site: str) -> list[str]:
        """Edges (keyed by child endpoint) from the root down to ``site``."""
        return list(reversed(self.ancestors(site))) + [site]

    def subtree_sites(self, name: str) -> list[str]:
        """Leaves under ``name`` (in :attr:`site_names` order)."""
        if name not in self.children:
            return [name] if name in self.parent or name == self.root else []
        keep = set()
        stack = [name]
        while stack:
            node = stack.pop()
            if node in self.children:
                stack.extend(self.children[node])
            else:
                keep.add(node)
        return [leaf for leaf in self.site_names if leaf in keep]

    def describe(self) -> dict[str, Any]:
        """Structured summary for protocol details and experiment rows."""
        return {
            "depth": self.depth,
            "fan_out": self.fan_out,
            "aggregators": len(self.aggregators),
            "sites": len(self.site_names),
            "flat": self.is_flat,
        }

    def rename_sites(self, mapping: Mapping[str, str]) -> "TreeSpec":
        """The same shape with leaves renamed through ``mapping``.

        Names absent from ``mapping`` (aggregators, the root) pass through
        unchanged.  Used when a caller's tree over custom site names must
        run against positionally named endpoints (``site-0..k-1``).
        """
        return TreeSpec(
            {
                parent: [mapping.get(kid, kid) for kid in kids]
                for parent, kids in self.children.items()
            },
            root=self.root,
            site_names=[mapping.get(name, name) for name in self.site_names],
        )

    # ------------------------------------------------------------ restriction
    def restrict(self, keep_sites: Iterable[str]) -> "TreeSpec":
        """The subtree spanned by ``keep_sites`` (dropout/quorum exclusions).

        Aggregators left with no surviving leaves disappear; an aggregator
        with a single surviving child keeps its hop (the topology is what
        it is — exclusion does not rewire links).
        """
        keep = set(keep_sites)
        missing = keep - set(self.site_names)
        if missing:
            raise ValueError(f"cannot restrict to unknown sites {sorted(missing)}")
        if not keep:
            raise ValueError("cannot restrict a tree to zero sites")

        def prune(node: str) -> str | None:
            if node not in self.children:
                return node if node in keep else None
            kids = [kid for kid in (prune(child) for child in self.children[node]) if kid]
            if not kids:
                return None
            children_of[node] = kids
            return node

        children_of: dict[str, list[str]] = {}
        if prune(self.root) is None:
            raise ValueError("cannot restrict a tree to zero sites")
        return TreeSpec(
            children_of,
            root=self.root,
            site_names=[name for name in self.site_names if name in keep],
        )

    # ----------------------------------------------------------- constructors
    @classmethod
    def flat(cls, site_names: Sequence[str], *, root: str = "coordinator") -> "TreeSpec":
        """The depth-1 star: every site a direct child of the root."""
        return cls({root: list(site_names)}, root=root, site_names=site_names)

    @classmethod
    def regular(
        cls,
        site_names: Sequence[str],
        fan_out: int,
        *,
        root: str = "coordinator",
    ) -> "TreeSpec":
        """Balanced fan-out-``F`` tree over contiguous site runs.

        Sites are grouped bottom-up in contiguous runs of ``fan_out``; each
        level of groups gets one aggregator per run until at most
        ``fan_out`` nodes remain as the root's children.  ``fan_out >= k``
        degenerates to the flat star.
        """
        if fan_out < 2:
            raise ValueError(f"fan_out must be >= 2, got {fan_out}")
        names = list(site_names)
        children_of: dict[str, Sequence[str]] = {}
        nodes, level = names, 0
        while len(nodes) > fan_out:
            groups = [nodes[i : i + fan_out] for i in range(0, len(nodes), fan_out)]
            aggs = [f"agg-{level}-{index}" for index in range(len(groups))]
            for agg, group in zip(aggs, groups):
                children_of[agg] = group
            nodes, level = aggs, level + 1
        children_of[root] = nodes
        return cls(children_of, root=root, site_names=names)

    @classmethod
    def from_grouping(
        cls,
        site_names: Sequence[str],
        grouping: Sequence[Any],
        *,
        root: str = "coordinator",
    ) -> "TreeSpec":
        """An arbitrary shape from a nested grouping of site *indices*.

        ``grouping`` is a nested list: integers are leaf sites (indices
        into ``site_names``), sub-lists become aggregators (named by their
        path, e.g. ``agg-0.2``).  Every site index must appear exactly
        once.  Example: ``[[0, 1], [2, [3, 4]], 5]`` puts site 5 directly
        under the root next to two aggregators, one of which nests another.
        """
        names = list(site_names)
        used: set[int] = set()
        children_of: dict[str, list[str]] = {}

        def walk(node: Any, path: tuple[int, ...]) -> str:
            if isinstance(node, (list, tuple)):
                name = root if not path else "agg-" + ".".join(map(str, path))
                children_of[name] = [
                    walk(child, path + (i,)) for i, child in enumerate(node)
                ]
                return name
            index = int(node)
            if index in used or not 0 <= index < len(names):
                raise ValueError(
                    f"grouping must use each site index in [0, {len(names)}) exactly "
                    f"once (offending index: {index})"
                )
            used.add(index)
            return names[index]

        walk(list(grouping), ())
        if len(used) != len(names):
            missing = sorted(set(range(len(names))) - used)
            raise ValueError(f"grouping is missing site indices {missing}")
        return cls(children_of, root=root, site_names=names)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        info = self.describe()
        return (
            f"TreeSpec(sites={info['sites']}, aggregators={info['aggregators']}, "
            f"depth={info['depth']}, fan_out={info['fan_out']})"
        )
