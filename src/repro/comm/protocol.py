"""Protocol driver and result/cost containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.comm.channel import Channel
from repro.comm.party import Party


@dataclass
class CostReport:
    """Communication cost of one protocol execution.

    ``makespan`` is the simulated end-to-end seconds of the transcript
    under the transport's :class:`repro.comm.conditions.NetworkConditions`
    (0.0 under the default ideal links).
    """

    total_bits: int
    rounds: int
    alice_bits: int
    bob_bits: int
    breakdown: dict[str, int] = field(default_factory=dict)
    makespan: float = 0.0

    @classmethod
    def from_channel(cls, channel: Channel) -> "CostReport":
        return cls(
            total_bits=channel.total_bits,
            rounds=channel.rounds,
            alice_bits=channel.bits_sent_by(channel.alice_name),
            bob_bits=channel.bits_sent_by(channel.bob_name),
            breakdown=channel.bits_by_label(),
            makespan=channel.makespan(),
        )


@dataclass
class ProtocolResult:
    """Outcome of one protocol execution: the output plus its cost."""

    value: Any
    cost: CostReport
    details: dict[str, Any] = field(default_factory=dict)


def split_protocol_output(output: Any) -> tuple[Any, dict]:
    """Split a protocol's raw return into ``(value, details)``.

    Protocol bodies may return either a bare value or a ``(value, details)``
    pair; drivers (two-party and k-party) normalize through this helper.
    """
    if isinstance(output, tuple) and len(output) == 2 and isinstance(output[1], dict):
        return output
    return output, {}


class Protocol:
    """Base class for the two-party protocols in :mod:`repro.core`.

    Subclasses implement :meth:`_execute`, receiving fully wired Alice and
    Bob :class:`~repro.comm.party.Party` objects, and return the protocol
    output (plus an optional ``details`` dict).  :meth:`run` takes care of
    channel construction, seeding and cost reporting.

    Parameters
    ----------
    seed:
        Seed for the protocol's randomness.  The same seed drives the shared
        (public-coin) randomness and both parties' private randomness, split
        into independent streams.
    """

    #: Human-readable protocol name (used in benchmark tables).
    name: str = "protocol"

    def __init__(self, *, seed: int | None = None) -> None:
        self.seed = seed

    # ------------------------------------------------------------------ api
    def run(self, alice_data: Any, bob_data: Any) -> ProtocolResult:
        """Execute the protocol on the given inputs and report costs."""
        channel = Channel()
        root = np.random.default_rng(self.seed)
        shared_seed = int(root.integers(0, 2**63 - 1))
        alice_rng, bob_rng = root.spawn(2)
        alice = Party("alice", alice_data, channel, rng=alice_rng)
        bob = Party("bob", bob_data, channel, rng=bob_rng)
        self.shared_rng = np.random.default_rng(shared_seed)
        output = self._execute(alice, bob)
        value, details = split_protocol_output(output)
        return ProtocolResult(value=value, cost=CostReport.from_channel(channel), details=details)

    # ------------------------------------------------------------- subclass
    def _execute(self, alice: Party, bob: Party) -> Any:
        raise NotImplementedError
