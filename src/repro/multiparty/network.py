"""Compatibility alias: the star network now lives in :mod:`repro.comm.network`.

The ``Network`` moved next to the channel it generalizes when the protocol
stacks were unified on the topology-agnostic engine; import it from
``repro.comm.network`` (or ``repro.comm``) in new code.

This module is **scheduled for removal** (see the README migration note);
its aliasing behaviour is pinned by ``tests/multiparty/test_deprecation.py``
so the removal will be a deliberate, test-visible change.
"""

from repro.comm.network import DOWNSTREAM, UPSTREAM, Network

__all__ = ["DOWNSTREAM", "Network", "UPSTREAM"]
