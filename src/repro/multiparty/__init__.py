"""Multi-site coordinator runtime: k-party protocols over a metered star.

The paper's protocols are stated for two parties (Alice holds ``A``, Bob
holds ``B``).  This package exposes the *coordinator model* standard in
distributed functional monitoring: the rows of ``A`` are sharded across k
sites arranged in a star around one coordinator that holds ``B``, every
message travels over a metered coordinator-site link, and the coordinator
combines k mergeable site summaries instead of two.

Since the engine unification the protocol bodies live in
:mod:`repro.engine`, written once against the star topology; the two-party
classes in :mod:`repro.core` run the same bodies with a single site.  This
package keeps the cluster-facing surface:

* :class:`repro.multiparty.estimator.ClusterEstimator` — the facade,
  sharing its query dispatch with
  :class:`repro.core.api.MatrixProductEstimator`.
* ``Network`` (now in :mod:`repro.comm.network`), ``Site`` / ``Coordinator``
  (now in :mod:`repro.engine.topology`) — re-exported here for
  compatibility, together with the historical ``Multiparty*`` protocol
  names.  ``repro.multiparty.protocols`` itself is deprecated.
"""

from repro.comm.network import Network
from repro.engine.base import ClusterCostReport, StarProtocol
from repro.engine.heavy_hitters import (
    StarBinaryHeavyHittersProtocol,
    StarHeavyHittersProtocol,
)
from repro.engine.l0_sampling import StarL0SamplingProtocol
from repro.engine.lp_norm import StarLpNormProtocol, star_lp_pp_estimate
from repro.engine.topology import Coordinator, Site
from repro.multiparty.estimator import ClusterEstimator

#: Historical names for the engine protocol classes (see ``protocols.py``).
CoordinatorProtocol = StarProtocol
MultipartyLpNormProtocol = StarLpNormProtocol
MultipartyL0SamplingProtocol = StarL0SamplingProtocol
MultipartyHeavyHittersProtocol = StarHeavyHittersProtocol
MultipartyBinaryHeavyHittersProtocol = StarBinaryHeavyHittersProtocol

__all__ = [
    "ClusterCostReport",
    "ClusterEstimator",
    "Coordinator",
    "CoordinatorProtocol",
    "MultipartyBinaryHeavyHittersProtocol",
    "MultipartyHeavyHittersProtocol",
    "MultipartyL0SamplingProtocol",
    "MultipartyLpNormProtocol",
    "Network",
    "Site",
    "star_lp_pp_estimate",
]
