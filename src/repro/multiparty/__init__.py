"""Multi-site coordinator runtime: k-party protocols over a metered star.

The paper's protocols are stated for two parties (Alice holds ``A``, Bob
holds ``B``).  This package generalizes the runtime to the *coordinator
model* standard in distributed functional monitoring: the rows of ``A`` are
sharded across k sites arranged in a star around one coordinator that holds
``B``, every message travels over a metered coordinator-site link, and the
coordinator combines k mergeable site summaries instead of two.

* :class:`repro.multiparty.network.Network` — the star-topology transport,
  with the same bit/round accounting contract as the two-party
  :class:`repro.comm.channel.Channel` (shared base:
  :class:`repro.comm.accounting.MessageLog`) plus per-link meters and
  ``max_link_bits``.
* :class:`repro.multiparty.site.Site` / ``Coordinator`` — the endpoints.
* :mod:`repro.multiparty.protocols` — k-site versions of the ``l_p`` norm,
  ``l_0``-sampling and heavy-hitters protocols; for k = 2 they reduce to the
  two-party protocols (same round counts, same accounting formulas).
* :class:`repro.multiparty.estimator.ClusterEstimator` — the facade,
  mirroring :class:`repro.core.api.MatrixProductEstimator` for a list of
  shards.
"""

from repro.multiparty.estimator import ClusterEstimator
from repro.multiparty.network import Network
from repro.multiparty.protocols import (
    ClusterCostReport,
    CoordinatorProtocol,
    MultipartyHeavyHittersProtocol,
    MultipartyL0SamplingProtocol,
    MultipartyLpNormProtocol,
    star_lp_pp_estimate,
)
from repro.multiparty.site import Coordinator, Site

__all__ = [
    "ClusterCostReport",
    "ClusterEstimator",
    "Coordinator",
    "CoordinatorProtocol",
    "MultipartyHeavyHittersProtocol",
    "MultipartyL0SamplingProtocol",
    "MultipartyLpNormProtocol",
    "Network",
    "Site",
    "star_lp_pp_estimate",
]
