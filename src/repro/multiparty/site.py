"""Compatibility alias: the endpoints now live in :mod:`repro.engine.topology`.

``Site`` and ``Coordinator`` moved into the engine when the protocol stacks
were unified; import them from ``repro.engine.topology`` (or
``repro.engine``) in new code.  Sites build shard summaries exclusively via
the batched :meth:`~repro.engine.topology.Site.partial_summary` /
``MergeableSketch.update_many`` route — there is no per-row update path.
"""

from repro.engine.topology import Coordinator, Site

__all__ = ["Coordinator", "Site"]
