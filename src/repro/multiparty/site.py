"""Endpoints of the star network: k sites and one coordinator.

These mirror :class:`repro.comm.party.Party` for the k-party setting.  A
:class:`Site` owns a *shard* — a contiguous block of rows of the global
matrix ``A`` — plus its global row range, a private random generator, and a
handle to the shared :class:`~repro.multiparty.network.Network`.  The
:class:`Coordinator` owns the second matrix ``B`` (it plays Bob's role from
the two-party protocols) and is the only endpoint every site can reach.

Shared (public-coin) randomness is modelled exactly as in the two-party
runtime: the protocol driver derives one seed and every endpoint constructs
identical helper objects (sketches) from it.  Broadcasting the seed itself
is never charged — the protocols are public-coin, and by Newman's theorem
privatizing the coins costs only an additive ``O(log n)`` bits per site.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from repro.multiparty.network import Network


class Site:
    """One leaf of the star, holding a row-shard of the global matrix.

    Parameters
    ----------
    name:
        Endpoint name (must be one of the network's site names).
    shard:
        The site's local block of rows of the global matrix ``A``.
    network:
        The shared star network.
    row_offset:
        Index of the shard's first row in the global row numbering, so the
        site can report global coordinates.
    rng:
        The site's private randomness.
    """

    def __init__(
        self,
        name: str,
        shard: Any,
        network: Network,
        *,
        row_offset: int = 0,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.name = name
        self.data = shard
        self.network = network
        self.row_offset = int(row_offset)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.scratch: dict[str, Any] = {}

    @property
    def rows(self) -> np.ndarray:
        """Global row indices covered by this site's shard."""
        return self.row_offset + np.arange(np.asarray(self.data).shape[0])

    def send(
        self,
        payload: Any,
        *,
        label: str = "",
        bits: int | None = None,
        universe: int | None = None,
    ) -> Any:
        """Send ``payload`` upstream to the coordinator."""
        return self.network.send(
            self.name,
            self.network.coordinator_name,
            payload,
            label=label,
            bits=bits,
            universe=universe,
        )

    @property
    def bits_sent(self) -> int:
        """Total bits this site has sent so far."""
        return self.network.bits_sent_by(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Site({self.name!r}, rows {self.row_offset}+{np.asarray(self.data).shape[0]})"


class Coordinator:
    """The hub of the star, holding the matrix ``B``."""

    def __init__(
        self,
        data: Any,
        network: Network,
        *,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.name = network.coordinator_name
        self.data = data
        self.network = network
        self.rng = rng if rng is not None else np.random.default_rng()
        self.scratch: dict[str, Any] = {}

    def send(
        self,
        site: Site | str,
        payload: Any,
        *,
        label: str = "",
        bits: int | None = None,
        universe: int | None = None,
    ) -> Any:
        """Send ``payload`` downstream to one site."""
        receiver = site.name if isinstance(site, Site) else site
        return self.network.send(
            self.name, receiver, payload, label=label, bits=bits, universe=universe
        )

    def broadcast(
        self,
        payload: Any,
        *,
        label: str = "",
        bits: int | None = None,
        sites: Iterable[Site | str] | None = None,
    ) -> Any:
        """Send the same ``payload`` to every site (``bits`` charged per link)."""
        names = None if sites is None else [s.name if isinstance(s, Site) else s for s in sites]
        return self.network.broadcast(payload, label=label, bits=bits, sites=names)

    @property
    def bits_sent(self) -> int:
        """Total bits the coordinator has sent so far (all links)."""
        return self.network.bits_sent_by(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Coordinator({self.name!r})"
