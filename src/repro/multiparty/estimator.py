"""High-level facade over the k-party coordinator protocols.

:class:`ClusterEstimator` mirrors :class:`repro.core.api.MatrixProductEstimator`
for the coordinator model: the rows of ``A`` live as shards on k sites, the
coordinator holds ``B``, and every query returns a
:class:`repro.comm.protocol.ProtocolResult` whose cost is a
:class:`repro.multiparty.protocols.ClusterCostReport` (total bits, rounds,
per-site and per-link loads).

Example
-------
>>> import numpy as np
>>> from repro.multiparty import ClusterEstimator
>>> rng = np.random.default_rng(0)
>>> a = (rng.uniform(size=(64, 64)) < 0.1).astype(int)
>>> b = (rng.uniform(size=(64, 64)) < 0.1).astype(int)
>>> cluster = ClusterEstimator.from_matrix(a, b, num_sites=4, seed=0)
>>> result = cluster.lp_norm(p=0, epsilon=0.3)
>>> result.value > 0
True
>>> result.cost.rounds
2
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.comm.protocol import ProtocolResult
from repro.multiparty.protocols import (
    MultipartyHeavyHittersProtocol,
    MultipartyL0SamplingProtocol,
    MultipartyLpNormProtocol,
    coerce_shards,
)


class ClusterEstimator:
    """Distributed statistics of ``C = A B`` with ``A`` sharded over k sites.

    Parameters
    ----------
    shards:
        The k sites' row-blocks of ``A``, in global row order (``A`` is their
        vertical concatenation).
    b:
        The coordinator's matrix, with ``b.shape[0]`` equal to the shards'
        common column count.
    seed:
        Base seed; each query derives an independent stream from it, in the
        same way as ``MatrixProductEstimator`` so that runs with equal seeds
        are comparable.
    """

    def __init__(
        self,
        shards: Sequence[np.ndarray],
        b: np.ndarray,
        *,
        seed: int | None = None,
    ) -> None:
        shards = coerce_shards(shards)
        b = np.asarray(b)
        if b.ndim != 2:
            raise ValueError("b must be a 2-dimensional matrix")
        if shards[0].shape[1] != b.shape[0]:
            raise ValueError(
                f"inner dimensions differ: shard {shards[0].shape} vs B {b.shape}"
            )
        self.shards = shards
        self.b = b
        self._seed_stream = np.random.default_rng(seed)

    @classmethod
    def from_matrix(
        cls,
        a: np.ndarray,
        b: np.ndarray,
        num_sites: int,
        *,
        seed: int | None = None,
    ) -> "ClusterEstimator":
        """Shard the rows of ``a`` evenly across ``num_sites`` sites."""
        a = np.asarray(a)
        if a.ndim != 2:
            raise ValueError("a must be a 2-dimensional matrix")
        if not 1 <= num_sites <= a.shape[0]:
            raise ValueError(
                f"num_sites must be in [1, {a.shape[0]}], got {num_sites}"
            )
        return cls(np.array_split(a, num_sites, axis=0), b, seed=seed)

    @property
    def num_sites(self) -> int:
        return len(self.shards)

    def _next_seed(self) -> int:
        return int(self._seed_stream.integers(0, 2**31 - 1))

    # ------------------------------------------------------------------ lp
    def lp_norm(self, p: float, epsilon: float = 0.25, **kwargs) -> ProtocolResult:
        """(1 + eps)-approximation of ``||A B||_p^p`` for ``p in [0, 2]``."""
        protocol = MultipartyLpNormProtocol(p, epsilon, seed=self._next_seed(), **kwargs)
        return protocol.run(self.shards, self.b)

    def join_size(self, epsilon: float = 0.25, **kwargs) -> ProtocolResult:
        """Set-intersection join size ``|A ∘ B| = ||A B||_0`` (p = 0)."""
        return self.lp_norm(0.0, epsilon, **kwargs)

    # ------------------------------------------------------------- sampling
    def l0_sample(self, epsilon: float = 0.25, **kwargs) -> ProtocolResult:
        """Uniform sample from the non-zero entries of ``A B``."""
        protocol = MultipartyL0SamplingProtocol(
            epsilon, seed=self._next_seed(), **kwargs
        )
        return protocol.run(self.shards, self.b)

    # -------------------------------------------------------- heavy hitters
    def heavy_hitters(
        self, phi: float, epsilon: float, *, p: float = 1.0, **kwargs
    ) -> ProtocolResult:
        """``l_p``-(phi, eps) heavy hitters of ``A B`` (non-negative inputs)."""
        protocol = MultipartyHeavyHittersProtocol(
            phi, epsilon, p=p, seed=self._next_seed(), **kwargs
        )
        return protocol.run(self.shards, self.b)
