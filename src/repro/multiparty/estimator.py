"""High-level facade over the k-party coordinator protocols.

:class:`ClusterEstimator` mirrors :class:`repro.core.api.MatrixProductEstimator`
for the coordinator model: the rows of ``A`` live as shards on k sites, the
coordinator holds ``B``, and every query returns a
:class:`repro.comm.protocol.ProtocolResult` whose cost is a
:class:`repro.engine.base.ClusterCostReport` (total bits, rounds, per-site
and per-link loads).  The query dispatch is shared with the two-party
estimator via :class:`repro.engine.api.EstimatorBase`, so every query the
two-party facade answers — including ``natural_join_size``, ``l1_sample``,
``linf`` and ``linf_kappa`` — is available on a cluster as well.

Example
-------
>>> import numpy as np
>>> from repro.multiparty import ClusterEstimator
>>> rng = np.random.default_rng(0)
>>> a = (rng.uniform(size=(64, 64)) < 0.1).astype(int)
>>> b = (rng.uniform(size=(64, 64)) < 0.1).astype(int)
>>> cluster = ClusterEstimator.from_matrix(a, b, num_sites=4, seed=0)
>>> result = cluster.lp_norm(p=0, epsilon=0.3)
>>> result.value > 0
True
>>> result.cost.rounds
2
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.comm.protocol import ProtocolResult
from repro.engine.api import EstimatorBase, is_binary_data
from repro.engine.base import StarProtocol
from repro.engine.topology import coerce_shards


class ClusterEstimator(EstimatorBase):
    """Distributed statistics of ``C = A B`` with ``A`` sharded over k sites.

    Parameters
    ----------
    shards:
        The k sites' row-blocks of ``A``, in global row order (``A`` is their
        vertical concatenation).
    b:
        The coordinator's matrix, with ``b.shape[0]`` equal to the shards'
        common column count.
    seed:
        Base seed; each query derives an independent stream from it, in the
        same way as ``MatrixProductEstimator`` so that runs with equal seeds
        are comparable.
    runtime:
        Optional :class:`repro.engine.runtime.Runtime` selecting the
        per-site executor (``serial``/``threads``/``processes``) and the
        dropout policy; forwarded to every query.
    conditions:
        Optional :class:`repro.comm.conditions.NetworkConditions` — per-link
        latency/bandwidth models (adds a simulated ``makespan`` to every
        cost report) and dropped-site declarations.
    transport:
        Optional :class:`repro.comm.transport.Transport` deciding who
        carries the star network.  The default is the in-process simulated
        star; the service layer's socket transport makes every metered
        message travel over a real TCP connection instead (see
        :meth:`serve` / :mod:`repro.service`).
    tree:
        Optional aggregation-tree overlay: a :class:`repro.comm.tree
        .TreeSpec` whose leaves are this cluster's site names, or an
        integer fan-out (balanced tree).  Queries route through interior
        aggregators that partially merge their children's summaries —
        estimates stay bit-identical to the flat star, while the root's
        fan-in drops from k to the fan-out (see ``details["tree"]`` and
        the tree makespan model).
    """

    def __init__(
        self,
        shards: Sequence[np.ndarray],
        b: np.ndarray,
        *,
        seed: int | None = None,
        runtime=None,
        conditions=None,
        transport=None,
        tree=None,
    ) -> None:
        super().__init__(
            seed=seed,
            runtime=runtime,
            conditions=conditions,
            transport=transport,
            tree=tree,
        )
        shards = coerce_shards(shards)
        b = np.asarray(b)
        if b.ndim != 2:
            raise ValueError("b must be a 2-dimensional matrix")
        if shards[0].shape[1] != b.shape[0]:
            raise ValueError(
                f"inner dimensions differ: shard {shards[0].shape} vs B {b.shape}"
            )
        self.shards = shards
        self.b = b
        self.is_binary = is_binary_data(*shards, b)

    @classmethod
    def from_matrix(
        cls,
        a: np.ndarray,
        b: np.ndarray,
        num_sites: int,
        *,
        seed: int | None = None,
        runtime=None,
        conditions=None,
        transport=None,
        tree=None,
    ) -> "ClusterEstimator":
        """Shard the rows of ``a`` evenly across ``num_sites`` sites."""
        a = np.asarray(a)
        if a.ndim != 2:
            raise ValueError("a must be a 2-dimensional matrix")
        if not 1 <= num_sites <= a.shape[0]:
            raise ValueError(
                f"num_sites must be in [1, {a.shape[0]}], got {num_sites}"
            )
        return cls(
            np.array_split(a, num_sites, axis=0),
            b,
            seed=seed,
            runtime=runtime,
            conditions=conditions,
            transport=transport,
            tree=tree,
        )

    @property
    def num_sites(self) -> int:
        return len(self.shards)

    # ---------------------------------------------------------------- service
    def serve(self, *, host: str = "127.0.0.1", port: int = 0):
        """Stand this cluster up as a real TCP service.

        Returns a running :class:`repro.service.server.CoordinatorServer`
        holding this estimator's coordinator matrix, base seed and network
        conditions.  The server waits for ``num_sites`` site-agent
        processes (``repro-site`` / :class:`repro.service.client.SiteAgent`)
        to register their shards, then answers client queries
        (:func:`repro.service.client.connect`) by running the engine
        protocols over the live sockets — with estimates and simulated
        meters bit-identical to calling the queries on this object, and
        observed wire bytes counted per link per round.

        This estimator's in-memory shards define the *expected* cluster
        shape only; the data the protocols run on is what the sites upload.
        """
        from repro.service.server import CoordinatorServer

        server = CoordinatorServer(
            self.b,
            num_sites=self.num_sites,
            expected_row_counts=[shard.shape[0] for shard in self.shards],
            seed=self.seed,
            conditions=self.conditions,
            host=host,
            port=port,
            tree=self.tree,
        )
        server.start()
        return server

    @staticmethod
    def connect(host: str, port: int, **kwargs):
        """Open a client proxy to a served cluster; see
        :func:`repro.service.client.connect`."""
        from repro.service.client import connect

        return connect(host, port, **kwargs)

    def _run(self, protocol: StarProtocol) -> ProtocolResult:
        return protocol.run(
            self.shards,
            self.b,
            runtime=self.runtime,
            conditions=self.conditions,
            transport=self.transport,
            tree=self.tree,
        )

    # -------------------------------------------------------------- streaming
    def stream(self, *, preload: bool = False, **kwargs):
        """Open a :class:`repro.engine.streaming.StreamingSession` over this
        cluster's topology.

        The session keeps this cluster's row partition, coordinator matrix
        and base seed, but its shards start *empty* and grow by batched
        turnstile ingestion (``ingest``) over epochs; sites ship serialized
        sketch deltas metered in real encoded bytes, and the coordinator
        serves live estimates between syncs.  One-shot queries on the
        session use the same per-query seed stream as this facade, so a
        session that has ingested exactly this cluster's shards answers them
        bit-for-bit identically — the migration path for one-shot users.

        With ``preload=True`` the cluster's current shards are ingested and
        synced as an initial epoch (``session.history[0]``, epoch 1), so
        live estimates are warm from the start.
        Keyword arguments (``refresh``, ``threshold``, ``monitor_epsilon``,
        ``sketch_mode="hash"`` for monitoring sketches whose construction
        cost is independent of the row count — the session's dense per-site
        shards still scale with it, ...) pass through to the session
        constructor.
        """
        from repro.engine.streaming import StreamingSession

        kwargs.setdefault("runtime", self.runtime)
        kwargs.setdefault("conditions", self.conditions)
        kwargs.setdefault("transport", self.transport)
        kwargs.setdefault("tree", self.tree)
        session = StreamingSession(
            [shard.shape[0] for shard in self.shards],
            self.b,
            seed=self.seed,
            **kwargs,
        )
        if preload:
            for index, shard in enumerate(self.shards):
                site = session.sites[index]
                # Shards pass through uncast so ingest's integer-delta guard
                # fires on non-integral data instead of silently truncating.
                session.ingest(
                    index, site.row_offset + np.arange(shard.shape[0]), shard
                )
            session.sync()
        return session
