"""k-site coordinator-model protocols over the star network.

Setting: the rows of ``A`` are sharded across k sites (site i holds a
contiguous block of rows), the coordinator holds ``B``, and the goal is a
statistic of ``C = A B`` — exactly the paper's two-party problems lifted to
the coordinator model of distributed functional monitoring.

Because every sketch in :mod:`repro.sketch` is linear, the two-party
protocols generalize with *no extra rounds*: whatever Alice used to send,
each site now sends for its shard, and the coordinator (playing Bob's role)
merges the k summaries entrywise before finishing exactly as Bob would.
Concretely:

* :class:`MultipartyLpNormProtocol` — Algorithm 1 in 2 rounds: the
  coordinator broadcasts the shared row sketch of ``B`` once, every site
  group-samples its own rows, and the coordinator sums the importance
  weighted contributions.  (Group sampling is stratified per shard; each
  shard's estimate is ``(1 ± eps)`` of its block's mass, so the sum is
  ``(1 ± eps)`` of ``||C||_p^p``.)
* :class:`MultipartyL0SamplingProtocol` — Theorem 3.2 in 1 round: each site
  ships the partial linear images of its shard and the coordinator merges
  them (the merged state equals the sketch of the full ``A`` exactly).
* :class:`MultipartyHeavyHittersProtocol` — Algorithm 4 / Corollary 5.2 in
  the same round count as the two-party protocol: the per-column counts and
  column lists of the sparse-product exchange are themselves mergeable
  summaries.

For k = 2 these reproduce the two-party protocols — same round counts, same
accounting formulas, estimates within the protocols' error bounds — which
the equivalence tests in ``tests/multiparty`` assert.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import reduce
from typing import Any

import numpy as np

from repro.comm import bitcost
from repro.comm.protocol import ProtocolResult, split_protocol_output
from repro.core.heavy_hitters_general import (
    entry_sampling_rate,
    forward_threshold,
    report_heavy_entries,
)
from repro.core.l0_sampling import finish_l0_sample
from repro.core.lp_norm import sample_block_rows, weighted_block_pp
from repro.core.result import HeavyHitterOutput
from repro.multiparty.network import Network
from repro.multiparty.site import Coordinator, Site
from repro.sketch.l0_sampler import L0Sampler
from repro.sketch.l0_sketch import L0Sketch
from repro.sketch.lp_sketch import make_lp_sketch


@dataclass
class ClusterCostReport:
    """Communication cost of one k-party protocol execution.

    Mirrors :class:`repro.comm.protocol.CostReport` with the star-specific
    quantities: per-site upload volumes, per-link loads, and the busiest
    link (which bounds the makespan when links transfer in parallel).
    """

    total_bits: int
    rounds: int
    coordinator_bits: int
    site_bits: dict[str, int] = field(default_factory=dict)
    link_bits: dict[str, int] = field(default_factory=dict)
    max_link_bits: int = 0
    breakdown: dict[str, int] = field(default_factory=dict)
    per_round: dict[int, int] = field(default_factory=dict)

    @classmethod
    def from_network(cls, network: Network) -> "ClusterCostReport":
        return cls(
            total_bits=network.total_bits,
            rounds=network.rounds,
            coordinator_bits=network.bits_sent_by(network.coordinator_name),
            site_bits={name: network.bits_sent_by(name) for name in network.site_names},
            link_bits=network.link_bits(),
            max_link_bits=network.max_link_bits,
            breakdown=network.bits_by_label(),
            per_round=network.bits_per_round(),
        )


def coerce_shards(shards: list[Any]) -> list[np.ndarray]:
    """Validate and normalize a list of row-shards (shared with the facade)."""
    shards = [np.asarray(shard) for shard in shards]
    if not shards:
        raise ValueError("need at least one site shard")
    for shard in shards:
        if shard.ndim != 2:
            raise ValueError("every shard must be a 2-dimensional matrix")
    if len({shard.shape[1] for shard in shards}) != 1:
        raise ValueError("all shards must agree on the inner dimension")
    return shards


class CoordinatorProtocol:
    """Base driver for the k-party protocols (mirrors ``comm.Protocol``).

    Subclasses implement :meth:`_execute` on fully wired
    :class:`~repro.multiparty.site.Coordinator` / ``Site`` endpoints;
    :meth:`run` handles network construction, seeding (one shared
    public-coin stream plus independent private streams per endpoint, spawned
    from the same root as the two-party driver) and cost reporting.
    """

    #: Human-readable protocol name (used in benchmark tables).
    name = "coordinator-protocol"

    def __init__(self, *, seed: int | None = None) -> None:
        self.seed = seed

    # ------------------------------------------------------------------ api
    def run(self, shards: list[Any], coordinator_data: Any) -> ProtocolResult:
        """Execute the protocol on k row-shards and the coordinator's matrix."""
        shards = coerce_shards(shards)
        k = len(shards)
        network = Network([f"site-{i}" for i in range(k)])
        root = np.random.default_rng(self.seed)
        shared_seed = int(root.integers(0, 2**63 - 1))
        rngs = root.spawn(k + 1)
        offsets = np.concatenate(([0], np.cumsum([s.shape[0] for s in shards])[:-1]))
        sites = [
            Site(f"site-{i}", shards[i], network, row_offset=int(offsets[i]), rng=rngs[i])
            for i in range(k)
        ]
        coordinator = Coordinator(coordinator_data, network, rng=rngs[-1])
        self.shared_rng = np.random.default_rng(shared_seed)

        output = self._execute(coordinator, sites)
        value, details = split_protocol_output(output)
        details.setdefault("num_sites", k)
        return ProtocolResult(
            value=value, cost=ClusterCostReport.from_network(network), details=details
        )

    # ------------------------------------------------------------- subclass
    def _execute(self, coordinator: Coordinator, sites: list[Site]) -> Any:
        raise NotImplementedError


def _total_rows(sites: list[Site]) -> int:
    return sum(np.asarray(site.data).shape[0] for site in sites)


def _check_inner_dims(sites: list[Site], b: np.ndarray) -> None:
    inner = np.asarray(sites[0].data).shape[1]
    if inner != b.shape[0]:
        raise ValueError(
            f"inner dimensions differ: shards have {inner} columns, "
            f"B has {b.shape[0]} rows"
        )


# ---------------------------------------------------------------------------
# Algorithm 1, k sites
# ---------------------------------------------------------------------------
def star_lp_pp_estimate(
    coordinator: Coordinator,
    sites: list[Site],
    *,
    p: float,
    epsilon: float,
    rho_constant: float,
    shared_rng: np.random.Generator,
    label_prefix: str = "",
) -> tuple[float, dict]:
    """Two-round k-site estimate of ``||A B||_p^p`` (Algorithm 1 lifted).

    Round 1 (downstream): the coordinator broadcasts the shared row sketch
    ``S B^T`` once.  Round 2 (upstream): every site group-samples its shard's
    rows — stratified by shard, then by geometric norm group — and ships the
    sampled rows with their inverse sampling weights.  The coordinator
    computes the sampled rows of ``C`` exactly and sums the importance
    weighted contributions over all shards.
    """
    b = np.asarray(coordinator.data)
    _check_inner_dims(sites, b)
    total_rows = _total_rows(sites)

    beta = math.sqrt(epsilon)
    rho = rho_constant / epsilon

    # --- Round 1: coordinator -> all sites, the row sketch S B^T -----------
    sketch = make_lp_sketch(b.shape[1], p, beta, shared_rng)
    sketched_bt = sketch.apply(b.T)
    coordinator.broadcast(
        sketched_bt,
        label=f"{label_prefix}round1/sketch-of-B",
        bits=bitcost.bits_for_matrix(sketched_bt),
        sites=sites,
    )

    # --- Round 2: every site -> coordinator, sampled shard rows ------------
    estimate = 0.0
    rough_total = 0.0
    sampled_total = 0
    for site in sites:
        a = np.asarray(site.data)
        c_tilde = a @ sketched_bt.T
        row_estimates = np.maximum(
            np.asarray(sketch.estimate_rows_pp(c_tilde), dtype=float), 0.0
        )
        site_total = float(np.sum(row_estimates))
        rough_total += site_total
        if site_total <= 0:
            site.send(0, label=f"{label_prefix}round2/empty", bits=1)
            continue

        payload, round2_bits = sample_block_rows(
            a,
            row_estimates,
            beta=beta,
            rho=rho,
            rng=site.rng,
            total_rows=total_rows,
            row_offset=site.row_offset,
        )
        site.send(payload, label=f"{label_prefix}round2/sampled-rows", bits=round2_bits)

        # Coordinator: exact norms of the sampled rows of C, weighted sum.
        estimate += weighted_block_pp(payload, b, p)
        sampled_total += int(len(payload["rows"]))

    details = {
        "sampled_rows": sampled_total,
        "beta": beta,
        "rho": rho,
        "rough_total": rough_total,
    }
    return estimate, details


class MultipartyLpNormProtocol(CoordinatorProtocol):
    """k-site two-round (1 + eps)-approximation of ``||A B||_p^p``.

    Same parameters as :class:`repro.core.lp_norm.LpNormProtocol`; for k = 2
    shards the runtime reduces to the two-party protocol (2 rounds, the same
    per-message accounting formulas).
    """

    name = "multiparty-lp-norm"

    def __init__(
        self,
        p: float,
        epsilon: float,
        *,
        rho_constant: float = 48.0,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if not 0 <= p <= 2:
            raise ValueError(f"p must be in [0, 2], got {p}")
        if not 0 < epsilon <= 1:
            raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
        if rho_constant <= 0:
            raise ValueError("rho_constant must be positive")
        self.p = float(p)
        self.epsilon = float(epsilon)
        self.rho_constant = float(rho_constant)

    def _execute(self, coordinator: Coordinator, sites: list[Site]):
        return star_lp_pp_estimate(
            coordinator,
            sites,
            p=self.p,
            epsilon=self.epsilon,
            rho_constant=self.rho_constant,
            shared_rng=self.shared_rng,
        )


# ---------------------------------------------------------------------------
# Theorem 3.2, k sites
# ---------------------------------------------------------------------------
class MultipartyL0SamplingProtocol(CoordinatorProtocol):
    """k-site one-round ``l_0``-sampling of the support of ``A B``.

    Every site accumulates the shared linear ``l_0`` sketch and
    ``l_0``-sampler over its shard (batched ``update_many``, global row
    indexing) and ships the partial summaries upstream; the coordinator
    merges them entrywise — the merged state equals the sketch of the full
    ``A`` exactly, because the sketches are linear — and finishes precisely
    as Bob does in the two-party protocol.
    """

    name = "multiparty-l0-sampling"

    def __init__(
        self,
        epsilon: float = 0.25,
        *,
        sampler_repetitions: int = 8,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if not 0 < epsilon <= 1:
            raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
        self.epsilon = float(epsilon)
        self.sampler_repetitions = int(sampler_repetitions)

    def _execute(self, coordinator: Coordinator, sites: list[Site]):
        b = np.asarray(coordinator.data)
        _check_inner_dims(sites, b)
        total_rows = _total_rows(sites)

        # Shared randomness: every endpoint derives the same sketch pair.
        l0_sketch = L0Sketch.for_accuracy(total_rows, self.epsilon, self.shared_rng)
        sampler = L0Sampler(
            total_rows, self.shared_rng, repetitions=self.sampler_repetitions
        )

        # Round 1 (the only round): sites -> coordinator, partial summaries.
        site_summaries = []
        for site in sites:
            shard = np.asarray(site.data).astype(np.int64)
            partial_sketch = l0_sketch.empty_copy()
            partial_sketch.update_many(site.rows, shard)
            partial_sampler = sampler.empty_copy()
            partial_sampler.update_many(site.rows, shard)
            bits = bitcost.bits_for_matrix(partial_sketch.state) + bitcost.bits_for_matrix(
                partial_sampler.state
            )
            site.send(
                {"l0_sketch": partial_sketch, "sampler": partial_sampler},
                label="sketches-of-shard",
                bits=bits,
            )
            site_summaries.append((partial_sketch, partial_sampler))

        # Coordinator: merge the k summaries, then finish exactly like Bob.
        merged_sketch = reduce(
            lambda acc, pair: acc.merge(pair[0]), site_summaries, l0_sketch.empty_copy()
        )
        merged_sampler = reduce(
            lambda acc, pair: acc.merge(pair[1]), site_summaries, sampler.empty_copy()
        )
        sketched_c = merged_sketch.state @ b.astype(np.int64)
        sampler_c = merged_sampler.state @ b.astype(np.int64)
        return finish_l0_sample(
            l0_sketch, sampler, sketched_c, sampler_c, coordinator.rng
        )


# ---------------------------------------------------------------------------
# Algorithm 4 / Corollary 5.2, k sites
# ---------------------------------------------------------------------------
class MultipartyHeavyHittersProtocol(CoordinatorProtocol):
    """k-site ``l_p``-(phi, eps) heavy hitters of ``A B`` (non-negative ints).

    The star version of :class:`repro.core.heavy_hitters_general
    .GeneralHeavyHittersProtocol`, with every Alice-side quantity replaced by
    a mergeable per-site summary:

    1. Both ends learn ``T ~= ||C||_p^p`` — per-site column sums merged at
       the coordinator for ``p = 1`` (Remark 2), the k-site Algorithm 1
       otherwise — and the coordinator broadcasts ``T`` back.
    2. Every site samples its shard's entries with the paper's rate ``beta``.
    3. Star sparse-product exchange: sites upload per-column non-zero counts
       (merged into the global ``u``); for each shared item the cheaper side
       ships — the coordinator sends its ``B``-rows to the sites that need
       them, sites ship their column lists upstream.
    4. Sites forward their shares' significant entries; the coordinator
       thresholds ``C' = C'_sites + C_coord`` and reports survivors.

    Round count matches the two-party protocol exactly: 5 rounds for
    ``p = 1``, 6 otherwise.
    """

    name = "multiparty-heavy-hitters"

    def __init__(
        self,
        phi: float,
        epsilon: float,
        *,
        p: float = 1.0,
        beta_constant: float = 64.0,
        rho_constant: float = 48.0,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if not 0 < epsilon <= phi <= 1:
            raise ValueError(f"need 0 < eps <= phi <= 1, got eps={epsilon}, phi={phi}")
        if not 0 < p <= 2:
            raise ValueError(f"p must be in (0, 2], got {p}")
        self.phi = float(phi)
        self.epsilon = float(epsilon)
        self.p = float(p)
        self.beta_constant = float(beta_constant)
        self.rho_constant = float(rho_constant)

    # ----------------------------------------------------------------- run
    def _execute(self, coordinator: Coordinator, sites: list[Site]):
        b = np.asarray(coordinator.data, dtype=np.int64)
        shards = [np.asarray(site.data, dtype=np.int64) for site in sites]
        if np.any(b < 0) or any(np.any(shard < 0) for shard in shards):
            raise ValueError("heavy-hitter protocol requires non-negative matrices")
        _check_inner_dims(sites, b)
        total_rows = _total_rows(sites)
        n_items = b.shape[0]
        n = max(total_rows, n_items, b.shape[1])

        # --- Step 1: everyone learns T ~ ||C||_p^p --------------------------
        total_pp = self._estimate_total_pp(coordinator, sites, shards, b)
        if total_pp <= 0:
            return HeavyHitterOutput(), {"total_pp": 0.0, "beta": 1.0}
        coordinator.broadcast(
            total_pp, label="hh/total-norm", bits=bitcost.FLOAT_BITS, sites=sites
        )

        # --- Step 2: sites scale C down by entry sampling -------------------
        beta = entry_sampling_rate(
            self.phi, self.epsilon, self.p,
            beta_constant=self.beta_constant, n=n, total_pp=total_pp,
        )
        beta_shards = []
        for site, shard in zip(sites, shards):
            keep = site.rng.uniform(size=shard.shape) < beta
            beta_shards.append(np.where((shard != 0) & keep, shard, 0).astype(np.int64))

        # --- Step 3: star sparse-product exchange ---------------------------
        values_are_binary = bool(
            all(np.all((s == 0) | (s == 1)) for s in beta_shards)
            and np.all((b == 0) | (b == 1))
        )
        value_bits = 0 if values_are_binary else bitcost.INT_ENTRY_BITS

        # Upstream: per-site per-column non-zero counts (mergeable).
        site_counts = []
        for site, beta_shard in zip(sites, beta_shards):
            u_site = np.count_nonzero(beta_shard, axis=0)
            site.send(
                u_site,
                label="hh/sparse-product-counts",
                bits=n_items * bitcost.bits_for_index(max(beta_shard.shape[0] + 1, 2)),
            )
            site_counts.append(u_site)
        u = np.sum(site_counts, axis=0)
        v = np.count_nonzero(b, axis=1)

        # Ownership: for each active item the cheaper side ships its lists.
        active = (u > 0) & (v > 0)
        coord_ships = active & (v < u)
        site_ships = active & (v >= u)

        # Downstream: B-rows for coordinator-shipped items, to the sites
        # whose shards touch them, plus each site's shipping instructions.
        for site, u_site in zip(sites, site_counts):
            needed = coord_ships & (u_site > 0)
            down_bits = n_items  # the per-item instruction bitmap
            for j in np.flatnonzero(needed):
                down_bits += int(v[j]) * (
                    bitcost.bits_for_index(max(b.shape[1], 1)) + value_bits
                )
            coordinator.send(
                site,
                {"ship_items": np.flatnonzero(site_ships & (u_site > 0)), "b_rows": needed},
                label="hh/coordinator-lists",
                bits=down_bits,
            )

        # Upstream: sites ship their column lists and, in the same round,
        # the significant entries of their shares of C^beta.
        report_threshold = forward_threshold(
            self.phi, self.epsilon, self.p, beta, total_pp
        )

        heavy_site_entries: dict[tuple[int, int], int] = {}
        c_coord = np.zeros((total_rows, b.shape[1]), dtype=np.int64)
        for site, u_site, beta_shard in zip(sites, site_counts, beta_shards):
            ship_mask = site_ships & (u_site > 0)
            ship_bits = 0
            for j in np.flatnonzero(ship_mask):
                ship_bits += int(np.count_nonzero(beta_shard[:, j])) * (
                    bitcost.bits_for_index(max(total_rows, 1)) + value_bits
                )
            site.send(
                {"items": np.flatnonzero(ship_mask)},
                label="hh/site-lists",
                bits=ship_bits,
            )
            # The coordinator owns the products of shipped items.
            rows = slice(site.row_offset, site.row_offset + beta_shard.shape[0])
            c_coord[rows] = beta_shard[:, ship_mask] @ b[ship_mask, :]

            # The site owns the products of coordinator-shipped items; it
            # forwards the significant entries of its share (same round).
            c_site = beta_shard[:, coord_ships] @ b[coord_ships, :]
            heavy_site = {
                (int(i) + site.row_offset, int(j)): int(c_site[i, j])
                for i, j in zip(*np.nonzero(c_site > report_threshold))
            }
            entry_bits = bitcost.bits_for_int(len(heavy_site)) + len(heavy_site) * (
                2 * bitcost.bits_for_index(max(n, 2)) + bitcost.INT_ENTRY_BITS
            )
            site.send(heavy_site, label="hh/site-heavy-entries", bits=entry_bits)
            heavy_site_entries.update(heavy_site)

        # --- Step 4: coordinator thresholds C' = C_coord + forwarded --------
        c_prime = c_coord.astype(float)
        for (i, j), value in heavy_site_entries.items():
            c_prime[i, j] += value

        output, output_threshold = report_heavy_entries(
            c_prime,
            phi=self.phi, epsilon=self.epsilon, p=self.p, beta=beta, total_pp=total_pp,
        )
        details = {
            "total_pp": total_pp,
            "beta": beta,
            "scaled_nonzeros": int(
                np.count_nonzero(c_coord) + len(heavy_site_entries)
            ),
            "output_threshold": output_threshold,
        }
        return output, details

    # ------------------------------------------------------------ internals
    def _estimate_total_pp(
        self,
        coordinator: Coordinator,
        sites: list[Site],
        shards: list[np.ndarray],
        b: np.ndarray,
    ) -> float:
        """Step 1: ``||C||_p^p`` — merged column sums (Remark 2) for p = 1,
        the k-site Algorithm 1 otherwise."""
        if self.p == 1.0:
            merged = np.zeros(b.shape[0], dtype=np.int64)
            for site, shard in zip(sites, shards):
                column_sums = shard.sum(axis=0)
                bits = shard.shape[1] * bitcost.bits_for_int(
                    int(max(column_sums.max(initial=0), 1))
                )
                site.send(column_sums, label="hh/column-sums", bits=bits)
                merged += column_sums
            return float(merged.astype(float) @ b.sum(axis=1).astype(float))
        accuracy = min(0.5, self.epsilon / (4.0 * self.phi))
        estimate, _ = star_lp_pp_estimate(
            coordinator,
            sites,
            p=self.p,
            epsilon=accuracy,
            rho_constant=self.rho_constant,
            shared_rng=self.shared_rng,
            label_prefix="hh/",
        )
        return float(estimate)
