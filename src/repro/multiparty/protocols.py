"""Deprecated location: the k-site protocol bodies now live in :mod:`repro.engine`.

This module used to hold a parallel re-implementation of the ``l_p`` norm,
``l_0``-sampling and heavy-hitter protocols for the coordinator model.  The
engine unification collapsed the two-party and k-site stacks onto one
topology-agnostic implementation per protocol family; the historical names
below are aliases kept for one release so existing imports keep working.

Import from :mod:`repro.engine` (or :mod:`repro.multiparty`) in new code.
"""

from __future__ import annotations

import warnings

from repro.engine.base import ClusterCostReport, StarProtocol
from repro.engine.heavy_hitters import (
    StarBinaryHeavyHittersProtocol,
    StarHeavyHittersProtocol,
)
from repro.engine.l0_sampling import StarL0SamplingProtocol
from repro.engine.lp_norm import StarLpNormProtocol, star_lp_pp_estimate
from repro.engine.topology import coerce_shards

# Exactly one DeprecationWarning per (fresh) import of this module,
# attributed to the importer's ``import`` statement: ``warnings.warn``
# skips import-machinery frames when resolving ``stacklevel``, so level 2
# lands on the caller that pulled the shim in (pinned by
# ``tests/multiparty/test_deprecation.py``).
warnings.warn(
    "repro.multiparty.protocols is deprecated; the protocol bodies moved to "
    "repro.engine (aliases are exported from repro.multiparty)",
    DeprecationWarning,
    stacklevel=2,
)

#: Historical names for the engine protocol classes.
CoordinatorProtocol = StarProtocol
MultipartyLpNormProtocol = StarLpNormProtocol
MultipartyL0SamplingProtocol = StarL0SamplingProtocol
MultipartyHeavyHittersProtocol = StarHeavyHittersProtocol
MultipartyBinaryHeavyHittersProtocol = StarBinaryHeavyHittersProtocol

__all__ = [
    "ClusterCostReport",
    "CoordinatorProtocol",
    "MultipartyBinaryHeavyHittersProtocol",
    "MultipartyHeavyHittersProtocol",
    "MultipartyL0SamplingProtocol",
    "MultipartyLpNormProtocol",
    "coerce_shards",
    "star_lp_pp_estimate",
]
