"""Relational view: compositions (set-intersection joins) and natural joins.

The paper's motivating application (Section 1.1): relations ``A ⊆ X x Y``
and ``B ⊆ Y x Z`` over a shared attribute ``Y`` correspond to binary
matrices, and

* the *composition* ``A ∘ B`` (set-intersection join) has size ``||AB||_0``,
* the *natural join* ``A ⋈ B`` has size ``||AB||_1``,
* the pairs with the largest overlap are the heavy hitters / ``l_inf`` of
  ``AB``.

This package provides a small :class:`~repro.joins.relation.Relation` type
and distributed join-size estimators built on the core protocols, which is
what the examples use.
"""

from repro.joins.joins import (
    DistributedJoinEstimator,
    composition,
    composition_size,
    natural_join,
    natural_join_size,
)
from repro.joins.relation import Relation

__all__ = [
    "Relation",
    "DistributedJoinEstimator",
    "composition",
    "composition_size",
    "natural_join",
    "natural_join_size",
]
