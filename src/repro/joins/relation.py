"""Binary relations over integer-labelled domains.

A :class:`Relation` is a set of pairs ``(x, y)`` with ``x in [m)`` and
``y in [n)``.  It converts to and from the binary-matrix view the protocols
operate on: as the *left* operand of a join over its second attribute the
relation becomes the matrix ``A`` with ``A[x, y] = 1``; as the *right*
operand it becomes ``B`` with ``B[y, z] = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np


@dataclass
class Relation:
    """A binary relation over ``[num_left) x [num_right)``."""

    num_left: int
    num_right: int
    pairs: set[tuple[int, int]] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.num_left < 1 or self.num_right < 1:
            raise ValueError("domain sizes must be >= 1")
        for x, y in self.pairs:
            self._check_pair(x, y)
        self.pairs = {(int(x), int(y)) for x, y in self.pairs}

    # ----------------------------------------------------------- construction
    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple[int, int]], *, num_left: int, num_right: int
    ) -> "Relation":
        return cls(num_left=num_left, num_right=num_right, pairs=set(pairs))

    @classmethod
    def from_matrix(cls, matrix: np.ndarray) -> "Relation":
        """Interpret a binary matrix as a relation (non-zero = pair present)."""
        matrix = np.asarray(matrix)
        rows, cols = np.nonzero(matrix)
        return cls(
            num_left=matrix.shape[0],
            num_right=matrix.shape[1],
            pairs={(int(x), int(y)) for x, y in zip(rows, cols)},
        )

    @classmethod
    def random(
        cls,
        num_left: int,
        num_right: int,
        *,
        density: float = 0.05,
        seed: int | np.random.Generator | None = None,
    ) -> "Relation":
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        matrix = rng.uniform(size=(num_left, num_right)) < density
        return cls.from_matrix(matrix)

    # -------------------------------------------------------------- behaviour
    def _check_pair(self, x: int, y: int) -> None:
        if not (0 <= x < self.num_left and 0 <= y < self.num_right):
            raise ValueError(f"pair ({x}, {y}) outside domain "
                             f"[{self.num_left}) x [{self.num_right})")

    def add(self, x: int, y: int) -> None:
        """Insert a pair."""
        self._check_pair(x, y)
        self.pairs.add((int(x), int(y)))

    def __contains__(self, pair: tuple[int, int]) -> bool:
        return tuple(pair) in self.pairs

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(sorted(self.pairs))

    # ------------------------------------------------------------ matrix view
    def to_matrix(self) -> np.ndarray:
        """Binary matrix with a 1 at every pair (shape ``num_left x num_right``)."""
        matrix = np.zeros((self.num_left, self.num_right), dtype=np.int64)
        for x, y in self.pairs:
            matrix[x, y] = 1
        return matrix

    def left_sets(self) -> dict[int, set[int]]:
        """``A_x = {y : (x, y) in A}`` for every left element ``x`` with a pair."""
        sets: dict[int, set[int]] = {}
        for x, y in self.pairs:
            sets.setdefault(x, set()).add(y)
        return sets

    def right_sets(self) -> dict[int, set[int]]:
        """``A^y = {x : (x, y) in A}`` for every right element ``y`` with a pair."""
        sets: dict[int, set[int]] = {}
        for x, y in self.pairs:
            sets.setdefault(y, set()).add(x)
        return sets
