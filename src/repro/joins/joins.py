"""Compositions, natural joins, and distributed size estimation.

Exact join computation is provided as ground truth; the
:class:`DistributedJoinEstimator` answers the size/statistics questions a
query optimiser would ask by delegating to the paper's protocols, reporting
both the estimate and the communication that was spent obtaining it.
"""

from __future__ import annotations

import numpy as np

from repro.comm.protocol import ProtocolResult
from repro.core.api import MatrixProductEstimator
from repro.joins.relation import Relation


def _check_join_compatible(left: Relation, right: Relation) -> None:
    if left.num_right != right.num_left:
        raise ValueError(
            "relations do not share their join attribute: left has "
            f"{left.num_right} values, right has {right.num_left}"
        )


def composition(left: Relation, right: Relation) -> set[tuple[int, int]]:
    """Exact composition ``A ∘ B = {(x, z) : exists y, (x,y) in A and (y,z) in B}``."""
    _check_join_compatible(left, right)
    by_y = right.left_sets()  # y -> {z}
    result: set[tuple[int, int]] = set()
    for x, y in left.pairs:
        for z in by_y.get(y, ()):
            result.add((x, z))
    return result


def composition_size(left: Relation, right: Relation) -> int:
    """``|A ∘ B| = ||A B||_0``."""
    return len(composition(left, right))


def natural_join(left: Relation, right: Relation) -> set[tuple[int, int, int]]:
    """Exact natural join ``A ⋈ B = {(x, y, z) : (x,y) in A and (y,z) in B}``."""
    _check_join_compatible(left, right)
    by_y = right.left_sets()
    result: set[tuple[int, int, int]] = set()
    for x, y in left.pairs:
        for z in by_y.get(y, ()):
            result.add((x, y, z))
    return result


def natural_join_size(left: Relation, right: Relation) -> int:
    """``|A ⋈ B| = ||A B||_1``."""
    return len(natural_join(left, right))


class DistributedJoinEstimator:
    """Join-size and join-statistics estimation across two sites.

    One site holds relation ``A(X, Y)``, the other ``B(Y, Z)``; the estimator
    answers the query-optimiser questions from Section 1.1 of the paper with
    sub-``n^2`` communication.

    Parameters
    ----------
    left, right:
        The two relations (must share the join attribute's domain size).
    seed:
        Randomness seed forwarded to the underlying protocols.
    """

    def __init__(self, left: Relation, right: Relation, *, seed: int | None = None) -> None:
        _check_join_compatible(left, right)
        self.left = left
        self.right = right
        self._estimator = MatrixProductEstimator(
            left.to_matrix(), right.to_matrix(), seed=seed
        )

    # ------------------------------------------------------------------ sizes
    def composition_size(self, epsilon: float = 0.25, **kwargs) -> ProtocolResult:
        """(1+eps)-approximate set-intersection join size (``||AB||_0``)."""
        return self._estimator.join_size(epsilon=epsilon, **kwargs)

    def natural_join_size(self) -> ProtocolResult:
        """Exact natural-join size (``||AB||_1``, Remark 2)."""
        return self._estimator.natural_join_size()

    # ------------------------------------------------------------- statistics
    def max_overlap(self, epsilon: float = 0.25, **kwargs) -> ProtocolResult:
        """(2+eps)-approximate maximum intersection size (``||AB||_inf``)."""
        return self._estimator.linf(epsilon=epsilon, **kwargs)

    def heavy_overlaps(self, phi: float, epsilon: float, **kwargs) -> ProtocolResult:
        """Pairs whose intersection exceeds ``phi * ||AB||_1`` (heavy hitters)."""
        return self._estimator.heavy_hitters(phi, epsilon, **kwargs)

    def sample_matching_pair(self, epsilon: float = 0.25, **kwargs) -> ProtocolResult:
        """A uniform random pair from the composition (``l_0``-sampling)."""
        return self._estimator.l0_sample(epsilon=epsilon, **kwargs)

    def sample_join_witness(self) -> ProtocolResult:
        """A join result sampled proportionally to its multiplicity (Remark 3)."""
        return self._estimator.l1_sample()

    # ----------------------------------------------------------------- oracle
    def exact_sizes(self) -> dict[str, int]:
        """Centralised ground truth (for tests and error reporting)."""
        c = self.left.to_matrix() @ self.right.to_matrix()
        return {
            "composition": int(np.count_nonzero(c)),
            "natural_join": int(c.sum()),
            "max_overlap": int(c.max()) if c.size else 0,
        }
