"""CountSketch / compressed-matrix-multiplication heavy-hitter baseline.

Pagh's compressed matrix multiplication [32] computes a CountSketch of the
*product* ``C = A B`` from CountSketches of the factors: writing
``C = sum_k A_{*,k} B_{k,*}``, the CountSketch of the outer product
``A_{*,k} B_{k,*}`` with the pair hash ``h(i,j) = (h_A(i) + h_B(j)) mod w``
and sign ``s(i,j) = s_A(i) s_B(j)`` is the circular convolution of the
CountSketch of ``A_{*,k}`` (under ``h_A, s_A``) with the CountSketch of
``B_{k,*}`` (under ``h_B, s_B``).

Distributed, this means Alice ships one width-``w`` sketch per shared item
``k`` — ``Theta(n w) = Theta(n / eps^2)`` numbers in one round — and Bob
finishes locally.  The paper's related-work section points out exactly this
cost, which is what the Section 5 protocols beat; this module implements the
baseline so the comparison can be run.
"""

from __future__ import annotations

import numpy as np

from repro.comm import bitcost
from repro.comm.party import Party
from repro.comm.protocol import Protocol
from repro.core.result import HeavyHitterOutput
from repro.sketch.kernels import StackedKWiseHash


class CompressedMatMulHeavyHittersProtocol(Protocol):
    """One-round CountSketch-of-``A B`` heavy hitters (the [32]-style baseline).

    Parameters
    ----------
    phi, epsilon:
        Heaviness threshold and slack with respect to ``||C||_1`` (this
        baseline targets ``p = 1``).
    width:
        CountSketch width per repetition; defaults to ``ceil(8/epsilon)``
        buckets which bounds the per-entry error by ``eps ||C||_1 / 8``.
    depth:
        Number of independent repetitions (median of estimates).
    """

    name = "countsketch-compressed-matmul"

    def __init__(
        self,
        phi: float,
        epsilon: float,
        *,
        width: int | None = None,
        depth: int = 3,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if not 0 < epsilon <= phi <= 1:
            raise ValueError(f"need 0 < eps <= phi <= 1, got eps={epsilon}, phi={phi}")
        self.phi = float(phi)
        self.epsilon = float(epsilon)
        self.width = int(width) if width is not None else max(8, int(np.ceil(8.0 / epsilon)))
        self.depth = int(depth)

    def _execute(self, alice: Party, bob: Party):
        a = np.asarray(alice.data, dtype=float)
        b = np.asarray(bob.data, dtype=float)
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"inner dimensions differ: {a.shape} vs {b.shape}")
        n_rows, n_items = a.shape
        n_cols = b.shape[1]

        # Shared hash functions (public coins): same draw order and values as
        # the historical per-repetition KWiseHash members, evaluated in one
        # stacked pass (repro.sketch.kernels).
        row_keys = np.arange(n_rows)
        col_keys = np.arange(n_cols)
        row_buckets = StackedKWiseHash(2, self.depth, self.shared_rng).buckets(
            row_keys, self.width
        )
        col_buckets = StackedKWiseHash(2, self.depth, self.shared_rng).buckets(
            col_keys, self.width
        )
        row_signs = StackedKWiseHash(4, self.depth, self.shared_rng).signs(row_keys)
        col_signs = StackedKWiseHash(4, self.depth, self.shared_rng).signs(col_keys)

        # Alice ships, per item k and repetition d, the CountSketch of A_{*,k}.
        # One fused bincount per repetition over the flattened (bucket, item)
        # grid replaces the historical per-item scatter loop; accumulation is
        # exact for the integer-valued inputs this baseline runs on.
        alice_sketches = np.zeros((self.depth, n_items, self.width))
        item_ids = np.arange(n_items)
        for rep in range(self.depth):
            signed = a * row_signs[rep][:, None]
            bins = (row_buckets[rep][:, None] * n_items + item_ids[None, :]).ravel()
            binned = np.bincount(
                bins, weights=signed.ravel(), minlength=self.width * n_items
            )
            alice_sketches[rep] = binned.reshape(self.width, n_items).T
        alice.send(
            bob,
            alice_sketches,
            label="per-item-countsketches",
            bits=bitcost.bits_for_matrix(alice_sketches),
        )

        # Bob convolves with his per-item sketches and sums over items.
        product_sketch = np.zeros((self.depth, self.width))
        for rep in range(self.depth):
            signed_b = b * col_signs[rep][None, :]
            bins = (item_ids[:, None] * self.width + col_buckets[rep][None, :]).ravel()
            bob_sketches = np.bincount(
                bins, weights=signed_b.ravel(), minlength=n_items * self.width
            ).reshape(n_items, self.width)
            fa = np.fft.rfft(alice_sketches[rep], axis=1)
            fb = np.fft.rfft(bob_sketches, axis=1)
            conv = np.fft.irfft(fa * fb, n=self.width, axis=1)
            product_sketch[rep] = conv.sum(axis=0)

        # Bob knows ||C||_1 exactly for non-negative inputs (row/col sums);
        # he received Alice's column sums implicitly via the sketches'
        # construction cost being dominated anyway, so charge them explicitly.
        column_sums = a.sum(axis=0)
        alice.send(
            bob,
            column_sums,
            label="column-sums",
            bits=n_items * bitcost.bits_for_int(int(max(column_sums.max(), 1))),
        )
        total_l1 = float(column_sums @ b.sum(axis=1))
        if total_l1 <= 0:
            return HeavyHitterOutput(), {"total_l1": 0.0}

        threshold = (self.phi - self.epsilon / 2.0) * total_l1
        point_estimates = np.empty((self.depth, n_rows, n_cols))
        for rep in range(self.depth):
            pair_buckets = (row_buckets[rep][:, None] + col_buckets[rep][None, :]) % self.width
            pair_signs = row_signs[rep][:, None] * col_signs[rep][None, :]
            point_estimates[rep] = pair_signs * product_sketch[rep][pair_buckets]
        medians = np.median(point_estimates, axis=0)
        pairs = set()
        estimates: dict[tuple[int, int], float] = {}
        for i, j in zip(*np.nonzero(medians >= threshold)):
            pairs.add((int(i), int(j)))
            estimates[(int(i), int(j))] = float(medians[i, j])
        output = HeavyHitterOutput(pairs=pairs, estimates=estimates)
        return output, {"total_l1": total_l1, "width": self.width, "depth": self.depth}
