"""Baseline protocols the paper compares against."""

from repro.baselines.countsketch_hh import CompressedMatMulHeavyHittersProtocol
from repro.baselines.naive import NaiveExactProtocol, NaiveLinfProtocol
from repro.baselines.one_round import OneRoundLpNormProtocol

__all__ = [
    "CompressedMatMulHeavyHittersProtocol",
    "NaiveExactProtocol",
    "NaiveLinfProtocol",
    "OneRoundLpNormProtocol",
]
