"""The one-round ``O~(n/eps^2)`` baseline of [16] for ``||A B||_p``.

This is the "direct sketching" approach the paper improves on: Bob sends a
single ``l_p`` sketch of ``B^T`` with accuracy ``eps`` (``O~(1/eps^2)``
rows), Alice sketches every row of ``C`` and outputs the sum of the per-row
estimates.  One round, ``O~(n/eps^2)`` bits — a factor ``1/eps`` more than
Algorithm 1's two-round ``O~(n/eps)``.

The paper's Section 1.2 cites the ``Omega(n/eps^2)`` one-round lower bound
from [16] for ``p = 0``, so this baseline is essentially optimal among
one-round protocols; the benchmark in ``benchmarks/bench_e02_round_separation``
measures the crossover against Algorithm 1 empirically.
"""

from __future__ import annotations

import numpy as np

from repro.comm import bitcost
from repro.comm.party import Party
from repro.comm.protocol import Protocol
from repro.sketch.lp_sketch import make_lp_sketch


class OneRoundLpNormProtocol(Protocol):
    """One-round (1 + eps)-approximation of ``||A B||_p^p`` (the [16] baseline)."""

    name = "lp-norm-one-round-baseline"

    def __init__(self, p: float, epsilon: float, *, seed: int | None = None) -> None:
        super().__init__(seed=seed)
        if not 0 <= p <= 2:
            raise ValueError(f"p must be in [0, 2], got {p}")
        if not 0 < epsilon <= 1:
            raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
        self.p = float(p)
        self.epsilon = float(epsilon)

    def _execute(self, alice: Party, bob: Party):
        a = np.asarray(alice.data)
        b = np.asarray(bob.data)
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"inner dimensions differ: {a.shape} vs {b.shape}")

        # Single message: a full-accuracy sketch of B^T (eps, not sqrt(eps)).
        sketch = make_lp_sketch(b.shape[1], self.p, self.epsilon, self.shared_rng)
        sketched_bt = sketch.apply(b.T)
        bob.send(
            alice,
            sketched_bt,
            label="sketch-of-B",
            bits=bitcost.bits_for_matrix(sketched_bt),
        )

        c_tilde = a @ sketched_bt.T
        row_estimates = np.maximum(
            np.asarray(sketch.estimate_rows_pp(c_tilde), dtype=float), 0.0
        )
        estimate = float(np.sum(row_estimates))
        return estimate, {"sketch_rows": int(sketch.num_rows)}
