"""Naive baselines: ship the whole matrix, compute exactly.

These are the trivial protocols every theorem in the paper is measured
against — ``O(n^2)`` bits, one round, exact answers.  They serve two
purposes in the repo: as correctness oracles that still flow through the
metered channel, and as the ``n^2`` reference curve in the communication
benchmarks.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.comm import bitcost
from repro.comm.party import Party
from repro.comm.protocol import Protocol
from repro.matrices import stats


class NaiveExactProtocol(Protocol):
    """Alice ships ``A``; Bob computes any requested statistic exactly.

    Parameters
    ----------
    statistic:
        Function mapping the product ``C`` to the desired value, e.g.
        ``lambda c: repro.matrices.stats.exact_lp_pp(c, 0)``.
    """

    name = "naive-send-everything"

    def __init__(
        self,
        statistic: Callable[[np.ndarray], object],
        *,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        self.statistic = statistic

    def _execute(self, alice: Party, bob: Party):
        a = np.asarray(alice.data)
        b = np.asarray(bob.data)
        is_binary = bool(np.all((a == 0) | (a == 1)))
        per_entry = 1 if is_binary else bitcost.INT_ENTRY_BITS
        alice.send(
            bob,
            a,
            label="full-matrix",
            bits=bitcost.bits_for_matrix(a, per_entry=per_entry),
        )
        c = stats.product(a, b)
        return self.statistic(c), {"product_nnz": int(np.count_nonzero(c))}


class NaiveLinfProtocol(NaiveExactProtocol):
    """Exact ``||A B||_inf`` by shipping the whole matrix."""

    name = "naive-linf"

    def __init__(self, *, seed: int | None = None) -> None:
        super().__init__(stats.exact_linf, seed=seed)
