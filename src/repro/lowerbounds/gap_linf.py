"""Gap-``l_inf`` and the Theorem 4.8(2) reduction (general integer matrices).

Gap-``l_inf`` (Lemma 2.4): Alice and Bob hold ``x, y in [0, kappa]^t`` with
the promise that either ``|x_i - y_i| <= 1`` for every ``i``, or some
coordinate has ``|x_i - y_i| >= kappa``; deciding which needs
``Omega(t/kappa^2)`` bits.

Theorem 4.8(2) embeds a Gap-``l_inf`` instance of length ``(n/2)^2`` into
integer matrices exactly like the DISJ reduction (using the identity-block
trick so that ``A B = A' + B'``): the product's ``l_inf`` norm is ``>= kappa``
in the "far" case and ``<= 1`` in the "close" case, so a
``kappa``-approximation distinguishes them and inherits the
``Omega~(n^2/kappa^2)`` bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class GapLinfInstance:
    """A Gap-``l_inf`` instance with promise parameter ``kappa``."""

    x: np.ndarray
    y: np.ndarray
    kappa: int

    @property
    def length(self) -> int:
        return int(self.x.shape[0])

    @property
    def is_far(self) -> bool:
        """True when ``||x - y||_inf >= kappa`` (the "1" side of the promise)."""
        return bool(np.max(np.abs(self.x - self.y)) >= self.kappa)


def random_gap_linf_instance(
    length: int,
    kappa: int,
    *,
    far: bool,
    seed: int | np.random.Generator | None = None,
) -> GapLinfInstance:
    """Sample an instance satisfying the promise, with the requested answer."""
    if kappa < 2:
        raise ValueError(f"kappa must be >= 2, got {kappa}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    x = rng.integers(0, kappa + 1, size=length).astype(np.int64)
    noise = rng.integers(-1, 2, size=length)
    y = np.clip(x + noise, 0, kappa).astype(np.int64)
    if far:
        position = int(rng.integers(0, length))
        x[position] = kappa
        y[position] = 0
    return GapLinfInstance(x=x, y=y, kappa=int(kappa))


def gap_linf_to_matrices(instance: GapLinfInstance) -> tuple[np.ndarray, np.ndarray]:
    """Reduction: Gap-``l_inf`` instance -> integer matrices with
    ``||A B||_inf = ||x - y||_inf`` (up to the sign convention below).

    The identity-block embedding makes ``A B = [[A' + B', 0], [0, 0]]``; to
    express a *difference*, Bob negates his block, which is allowed because
    Theorem 4.8 concerns general (not binary) integer matrices.
    """
    half = int(round(np.sqrt(instance.length)))
    if half * half != instance.length:
        raise ValueError(
            f"instance length {instance.length} is not a perfect square; "
            "the reduction folds a length-(n/2)^2 vector into an (n/2)x(n/2) block"
        )
    a_block = instance.x.reshape(half, half)
    b_block = -instance.y.reshape(half, half)
    identity = np.eye(half, dtype=np.int64)
    zero = np.zeros((half, half), dtype=np.int64)
    a = np.block([[a_block, identity], [zero, zero]]).astype(np.int64)
    b = np.block([[identity, zero], [b_block, zero]]).astype(np.int64)
    return a, b


def reduction_gap(instance: GapLinfInstance) -> tuple[float, bool]:
    """``(||A B||_inf, is_far)`` for the reduced instance (test helper)."""
    a, b = gap_linf_to_matrices(instance)
    product = a @ b
    return float(np.max(np.abs(product))), instance.is_far
