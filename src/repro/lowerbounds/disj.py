"""Set-disjointness and the Theorem 4.4 reduction.

Theorem 4.4: any protocol that 2-approximates ``||A B||_inf`` for binary
``n x n`` matrices needs ``Omega(n^2)`` bits, via a reduction from
set-disjointness (DISJ) on strings of length ``(n/2)^2``:

* Alice folds her DISJ string ``x`` into an ``n/2 x n/2`` matrix ``A'`` and
  embeds it as ``A = [[A', I], [0, 0]]``;
* Bob folds ``y`` into ``B'`` and embeds it as ``B = [[I, 0], [B', 0]]``;
* then ``A B = [[A' + B', 0], [0, 0]]``, so ``||A B||_inf = 2`` iff the sets
  intersect and ``1`` otherwise — exactly the gap a 2-approximation must
  resolve.

Since DISJ needs ``Omega(n^2/4)`` bits (Lemma 2.3), so does the estimation
problem.  The functions here build the instances and the reduction; tests
verify the gap on random and on adversarial inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class DisjInstance:
    """A set-disjointness instance on ``length`` coordinates."""

    x: np.ndarray
    y: np.ndarray

    @property
    def length(self) -> int:
        return int(self.x.shape[0])

    @property
    def intersecting(self) -> bool:
        """``DISJ(x, y)`` = do the two sets share a coordinate?"""
        return bool(np.any((self.x != 0) & (self.y != 0)))


def random_disj_instance(
    length: int,
    *,
    force_intersecting: bool | None = None,
    density: float = 0.25,
    seed: int | np.random.Generator | None = None,
) -> DisjInstance:
    """Sample a DISJ instance, optionally forcing the answer.

    ``force_intersecting=True`` plants exactly one shared coordinate on top
    of otherwise disjoint strings; ``False`` removes every collision;
    ``None`` leaves the instance as drawn.
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    x = (rng.uniform(size=length) < density).astype(np.int64)
    y = (rng.uniform(size=length) < density).astype(np.int64)
    if force_intersecting is True:
        y[(x != 0) & (y != 0)] = 0
        position = int(rng.integers(0, length))
        x[position] = 1
        y[position] = 1
    elif force_intersecting is False:
        y[(x != 0) & (y != 0)] = 0
    return DisjInstance(x=x, y=y)


def disj_to_linf_matrices(instance: DisjInstance) -> tuple[np.ndarray, np.ndarray]:
    """The Theorem 4.4 reduction: DISJ instance -> binary matrices ``(A, B)``.

    The instance length must be a perfect square ``(n/2)^2``; the output
    matrices are ``n x n`` with ``||A B||_inf = 1 + DISJ(x, y)``.
    """
    half = int(round(np.sqrt(instance.length)))
    if half * half != instance.length:
        raise ValueError(
            f"instance length {instance.length} is not a perfect square; "
            "Theorem 4.4 folds a length-(n/2)^2 string into an (n/2)x(n/2) block"
        )
    a_block = instance.x.reshape(half, half)
    b_block = instance.y.reshape(half, half)
    identity = np.eye(half, dtype=np.int64)
    zero = np.zeros((half, half), dtype=np.int64)

    a = np.block([[a_block, identity], [zero, zero]]).astype(np.int64)
    b = np.block([[identity, zero], [b_block, zero]]).astype(np.int64)
    return a, b


def reduction_gap(instance: DisjInstance) -> tuple[float, bool]:
    """``(||A B||_inf, DISJ(x, y))`` for the reduced instance (test helper)."""
    a, b = disj_to_linf_matrices(instance)
    product = a @ b
    return float(product.max()), instance.intersecting
