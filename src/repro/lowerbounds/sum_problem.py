"""The AND / DISJ / SUM hard distributions and the Lemma 4.7 reduction.

Theorem 4.5 (``Omega~(n^{1.5}/kappa)`` for ``kappa``-approximating
``||A B||_inf`` on binary matrices) goes through a composed communication
problem:

* **AND** on a single bit pair, with input distributions ``nu_1`` (always
  answer 0, correlated through a hidden bit ``W``) and ``mu_1`` (answer 0 or
  1 with probability 1/2 each);
* **DISJ** on ``k = 1/(4 kappa beta^2)`` coordinates: ``nu_k`` sets every
  coordinate from ``nu_1``; ``mu_k`` additionally re-draws one random
  coordinate from ``mu_1``;
* **SUM** over ``n`` independent DISJ instances: all drawn from ``nu_k``,
  with one random block re-drawn from ``mu_k`` — so ``SUM in {0, 1}`` with
  probability 1/2 each.

Lemma 4.7's input reduction tiles the SUM instance into binary matrices
``A`` (rows repeat ``U_i``) and ``B`` (columns repeat ``V_i``) such that
``||A B||_inf <= 2 beta^2 n`` when ``SUM = 0`` and ``>= n/k = 4 kappa beta^2 n``
when ``SUM = 1`` — a ``2 kappa`` gap that a ``kappa``-approximation must
resolve.  ``beta = sqrt(50 log n / n)`` as in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass
class SumInstance:
    """A SUM instance: ``n`` DISJ blocks of ``k`` coordinates each."""

    u: np.ndarray  # shape (n, k), Alice's side
    v: np.ndarray  # shape (n, k), Bob's side
    special_block: int
    beta: float
    kappa: float

    @property
    def n(self) -> int:
        return int(self.u.shape[0])

    @property
    def k(self) -> int:
        return int(self.u.shape[1])

    @property
    def sum_value(self) -> int:
        """``SUM(U, V) = sum_i DISJ(U_i, V_i)`` (0 or 1 under the hard distribution)."""
        return int(np.sum(np.any((self.u != 0) & (self.v != 0), axis=1)))


def paper_beta(n: int, *, beta_constant: float = 50.0) -> float:
    """``beta = sqrt(beta_constant * log n / n)``, capped at 1 for tiny ``n``.

    The paper uses ``beta_constant = 50``, chosen so that Chernoff plus a
    union bound over ``n^2`` pairs works for asymptotically large ``n``; at
    laptop scale that constant makes ``beta`` saturate at 1 and the promise
    gap degenerate, so the experiments use a smaller constant (the gap
    structure is identical).
    """
    return min(1.0, math.sqrt(beta_constant * math.log(max(n, 2)) / max(n, 2)))


def paper_k(n: int, kappa: float, *, beta: float | None = None) -> int:
    """``k = 1/(4 kappa beta^2)`` (at least 1)."""
    beta = paper_beta(n) if beta is None else beta
    return max(1, int(round(1.0 / (4.0 * kappa * beta**2))))


def _sample_and_nu(rng: np.random.Generator, beta: float) -> tuple[int, int]:
    """One (X, Y) pair from ``nu_1``."""
    if rng.uniform() < 0.5:  # W = 0
        return (0, 1) if rng.uniform() < beta else (0, 0)
    return (1, 0) if rng.uniform() < beta else (0, 0)


def _sample_and_mu(rng: np.random.Generator) -> tuple[int, int]:
    """One (X, Y) pair from ``mu_1``."""
    return (1, 1) if rng.uniform() < 0.5 else (0, 0)


def sample_sum_instance(
    n: int,
    kappa: float,
    *,
    force_sum: int | None = None,
    beta_constant: float = 50.0,
    seed: int | np.random.Generator | None = None,
) -> SumInstance:
    """Draw a SUM instance from the hard distribution ``phi``.

    ``force_sum`` (0 or 1) conditions the draw on the answer by re-sampling
    the special block until it matches; useful for building test workloads
    with a known answer.  ``beta_constant`` scales the sampling rate (see
    :func:`paper_beta`).
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    beta = paper_beta(n, beta_constant=beta_constant)
    k = paper_k(n, kappa, beta=beta)

    u = np.zeros((n, k), dtype=np.int64)
    v = np.zeros((n, k), dtype=np.int64)
    for i in range(n):
        for j in range(k):
            u[i, j], v[i, j] = _sample_and_nu(rng, beta)

    special = int(rng.integers(0, n))
    while True:
        block_u = np.zeros(k, dtype=np.int64)
        block_v = np.zeros(k, dtype=np.int64)
        for j in range(k):
            block_u[j], block_v[j] = _sample_and_nu(rng, beta)
        m = int(rng.integers(0, k))
        block_u[m], block_v[m] = _sample_and_mu(rng)
        disj_value = int(np.any((block_u != 0) & (block_v != 0)))
        if force_sum is None or disj_value == int(force_sum):
            u[special] = block_u
            v[special] = block_v
            break
    # When force_sum == 0 we must also clear accidental intersections in the
    # nu-distributed blocks (they are intersection-free by construction of
    # nu_1, so nothing to do); assert the invariant for safety.
    return SumInstance(u=u, v=v, special_block=special, beta=beta, kappa=float(kappa))


def sum_to_linf_matrices(instance: SumInstance) -> tuple[np.ndarray, np.ndarray]:
    """Lemma 4.7's input reduction: SUM instance -> binary matrices ``(A, B)``.

    ``A`` is the horizontal tiling of ``n/k`` copies of the ``n x k`` matrix
    whose rows are the ``U_i``; ``B`` is the vertical tiling of copies of the
    ``k x n`` matrix whose columns are the ``V_i``.  Both end up ``n x n``
    (the last copy is truncated when ``k`` does not divide ``n``).
    """
    n, k = instance.u.shape
    copies = max(1, math.ceil(n / k))
    a = np.tile(instance.u, (1, copies))[:, :n].astype(np.int64)
    b = np.tile(instance.v.T, (copies, 1))[:n, :].astype(np.int64)
    return a, b


def reduction_gap(instance: SumInstance) -> tuple[float, int, float]:
    """``(||A B||_inf, SUM, separation_threshold)`` for the reduced instance.

    The paper's analysis: when ``SUM = 0`` every entry is at most about
    ``2 beta^2 n`` (w.h.p.), and when ``SUM = 1`` the special block forces an
    entry of at least ``n/k``; the returned threshold is the geometric mean
    of the two bounds, a convenient single number for tests to compare
    against.
    """
    a, b = sum_to_linf_matrices(instance)
    product = a @ b
    low = 2.0 * instance.beta**2 * instance.n
    high = instance.n / instance.k
    threshold = math.sqrt(max(low, 1e-12) * high)
    return float(product.max()), instance.sum_value, threshold
