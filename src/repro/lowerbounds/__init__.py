"""Hard-instance generators and reductions behind the paper's lower bounds.

A communication lower bound is a mathematical statement about *every*
protocol and cannot be "run"; what can be reproduced — and what this package
provides — is the reduction machinery the proofs rest on:

* :mod:`repro.lowerbounds.disj` — set-disjointness instances and the
  Theorem 4.4 reduction showing that a 2-approximation of ``||AB||_inf``
  decides DISJ (hence needs ``Omega(n^2)`` bits).
* :mod:`repro.lowerbounds.sum_problem` — the AND/DISJ/SUM hard distributions
  (``nu``, ``mu``, ``phi``) and the Lemma 4.7 reduction used for the
  ``Omega~(n^{1.5}/kappa)`` bound of Theorem 4.5.
* :mod:`repro.lowerbounds.gap_linf` — Gap-``l_inf`` instances and the
  Theorem 4.8(2) reduction for general integer matrices.

The accompanying tests and benchmarks verify that the constructed matrix
pairs exhibit exactly the promise gaps the proofs rely on.
"""

from repro.lowerbounds.disj import DisjInstance, disj_to_linf_matrices, random_disj_instance
from repro.lowerbounds.gap_linf import (
    GapLinfInstance,
    gap_linf_to_matrices,
    random_gap_linf_instance,
)
from repro.lowerbounds.sum_problem import (
    SumInstance,
    sample_sum_instance,
    sum_to_linf_matrices,
)

__all__ = [
    "DisjInstance",
    "disj_to_linf_matrices",
    "random_disj_instance",
    "GapLinfInstance",
    "gap_linf_to_matrices",
    "random_gap_linf_instance",
    "SumInstance",
    "sample_sum_instance",
    "sum_to_linf_matrices",
]
