"""repro — Distributed statistical estimation of matrix products.

Reference implementation of "Distributed Statistical Estimation of Matrix
Products with Applications" (Woodruff & Zhang, PODS 2018).

Two parties, Alice holding a matrix ``A`` and Bob holding a matrix ``B``,
estimate statistics of ``C = A B`` — ``l_p`` norms, the maximum entry, heavy
hitters, and support samples — while exchanging as few bits as possible.
Every protocol runs on an instrumented in-process channel so the
communication cost (bits and rounds) is measured exactly.

Quick start
-----------
>>> import numpy as np
>>> from repro import MatrixProductEstimator
>>> rng = np.random.default_rng(7)
>>> a = (rng.uniform(size=(64, 64)) < 0.08).astype(int)
>>> b = (rng.uniform(size=(64, 64)) < 0.08).astype(int)
>>> estimator = MatrixProductEstimator(a, b, seed=7)
>>> join_size = estimator.join_size(epsilon=0.3)      # ||AB||_0, Theorem 3.1
>>> natural = estimator.natural_join_size()           # ||AB||_1, Remark 2
>>> heavy = estimator.heavy_hitters(phi=0.1, epsilon=0.05)

Package layout
--------------
``repro.core``
    The paper's protocols (Algorithms 1-4, Remarks 2-3, Theorems 3.2, 4.8, 5.3).
``repro.comm``
    The metered two-party channel the protocols run on.
``repro.multiparty``
    The k-party coordinator runtime: a star-topology metered network, k-site
    versions of the core protocols, and the ``ClusterEstimator`` facade.
``repro.sketch``
    Linear sketches (AMS, p-stable, l0, l0-sampler, CountSketch, Count-Min).
``repro.matrices``
    Synthetic workload generators and exact ground-truth statistics.
``repro.baselines``
    The one-round sketching baseline of [16], naive exact protocols, and a
    CountSketch (compressed matrix multiplication) heavy-hitter baseline.
``repro.lowerbounds``
    Hard-instance generators and reductions behind the paper's lower bounds.
``repro.joins``
    Relational view: compositions (set-intersection joins) and natural joins.
``repro.distmm``
    Distributed sparse matrix product (Lemma 2.5 substitute).
``repro.experiments``
    Drivers that regenerate every experiment listed in EXPERIMENTS.md.
"""

from repro.comm.protocol import CostReport, ProtocolResult
from repro.core.api import MatrixProductEstimator
from repro.core.boosting import MedianBoostedProtocol
from repro.core.heavy_hitters_binary import BinaryHeavyHittersProtocol
from repro.core.heavy_hitters_general import GeneralHeavyHittersProtocol
from repro.core.l0_sampling import L0SamplingProtocol
from repro.core.l1_exact import ExactL1Protocol, L1SamplingProtocol
from repro.core.linf_binary import KappaApproxLinfProtocol, TwoPlusEpsilonLinfProtocol
from repro.core.linf_general import GeneralMatrixLinfProtocol
from repro.core.lp_norm import LpNormProtocol
from repro.core.result import HeavyHitterOutput, SampleOutput
from repro.engine.base import ClusterCostReport
from repro.engine.streaming import StreamingSession
from repro.multiparty.estimator import ClusterEstimator


def _load_version() -> str:
    """Single-source the version from pyproject.toml.

    A source checkout (``PYTHONPATH=src``) reads the adjacent
    ``pyproject.toml`` directly — preferred over installed-distribution
    metadata, which could belong to an older install of the same name.
    Installed packages have no adjacent pyproject and resolve through
    ``importlib.metadata``.
    """
    import pathlib
    import re

    pyproject = pathlib.Path(__file__).resolve().parents[2] / "pyproject.toml"
    if pyproject.is_file():
        match = re.search(
            r'^version\s*=\s*"([^"]+)"', pyproject.read_text(), re.MULTILINE
        )
        if match:
            return match.group(1)

    from importlib import metadata

    try:
        return metadata.version("matrix-product-estimation")
    except metadata.PackageNotFoundError:
        return "0+unknown"


__version__ = _load_version()

__all__ = [
    "MatrixProductEstimator",
    "ClusterEstimator",
    "StreamingSession",
    "ProtocolResult",
    "CostReport",
    "ClusterCostReport",
    "LpNormProtocol",
    "ExactL1Protocol",
    "L1SamplingProtocol",
    "L0SamplingProtocol",
    "TwoPlusEpsilonLinfProtocol",
    "KappaApproxLinfProtocol",
    "GeneralMatrixLinfProtocol",
    "GeneralHeavyHittersProtocol",
    "BinaryHeavyHittersProtocol",
    "MedianBoostedProtocol",
    "HeavyHitterOutput",
    "SampleOutput",
    "__version__",
]
