"""Two-party facade plumbing: ``core`` protocol classes delegate to the engine.

Since the engine unification every protocol family has exactly one
implementation, written against the star topology in :mod:`repro.engine`.
The classes in :mod:`repro.core` keep their historical names, signatures
and cost reports, but contain no transport logic: they wrap the engine
protocol and execute it in the two-party view (``k = 1`` — Alice is the
star's single site, Bob its hub), which reproduces the pre-unification
two-party transcripts bit for bit.
"""

from __future__ import annotations

from typing import Any, ClassVar

from repro.comm.protocol import Protocol, ProtocolResult
from repro.engine.base import StarProtocol

__all__ = ["EngineBackedProtocol"]


class EngineBackedProtocol(Protocol):
    """A two-party protocol implemented entirely by an engine protocol.

    Subclasses set :attr:`engine_protocol`; constructor arguments are passed
    through unchanged, and protocol parameters (``p``, ``epsilon``, ...)
    are readable on the facade as attribute proxies.
    """

    #: The star protocol class this facade delegates to.
    engine_protocol: ClassVar[type[StarProtocol]]

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(seed=kwargs.get("seed"))
        self._engine = type(self).engine_protocol(*args, **kwargs)

    def run(self, alice_data: Any, bob_data: Any) -> ProtocolResult:
        """Execute the engine protocol in the two-party (single-site) view."""
        return self._engine.run_two_party(alice_data, bob_data)

    def _execute(self, alice, bob):  # pragma: no cover - run() is overridden
        raise NotImplementedError("engine-backed protocols delegate run() to the engine")

    def __getattr__(self, name: str) -> Any:
        # Protocol parameters live on the engine protocol; proxy reads so
        # `LpNormProtocol(...).epsilon` keeps working.  Dunder/underscore
        # names are excluded to keep copy/pickle semantics sane.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.__dict__["_engine"], name)
