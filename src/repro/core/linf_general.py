"""Theorem 4.8(1): ``kappa``-approximation of ``||A B||_inf`` for integer matrices.

For general (non-binary) integer matrices the paper shows a sharp contrast
with the binary case: ``Theta~(n^2/kappa^2)`` communication is both necessary
and sufficient for a ``kappa``-approximation.  The upper bound is a one-round
protocol built from a classic ``l_inf``-via-``l_2`` block sketch
(Saks–Sun [33]): AMS-sketch blocks of ``kappa^2`` coordinates and output the
largest block-``l_2`` estimate.

The implementation lives in :mod:`repro.engine.linf` (k-site, mergeable
partial sketch images); this class is the two-party ``k = 1`` facade.
"""

from __future__ import annotations

from repro.core.facade import EngineBackedProtocol
from repro.engine.linf import StarGeneralMatrixLinfProtocol

__all__ = ["GeneralMatrixLinfProtocol"]


class GeneralMatrixLinfProtocol(EngineBackedProtocol):
    """One-round ``kappa``-approximation of ``||A B||_inf`` for integer matrices.

    Parameters
    ----------
    kappa:
        Target approximation factor (``1 <= kappa <= n``); the block size is
        ``kappa^2``.
    rows_per_block:
        AMS rows per block; more rows tighten the constant-factor ``l_2``
        estimation error.
    """

    name = "linf-general-blocked-ams"
    engine_protocol = StarGeneralMatrixLinfProtocol
