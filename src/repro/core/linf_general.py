"""Theorem 4.8(1): ``kappa``-approximation of ``||A B||_inf`` for integer matrices.

For general (non-binary) integer matrices the paper shows a sharp contrast
with the binary case: ``Theta~(n^2/kappa^2)`` communication is both necessary
and sufficient for a ``kappa``-approximation.  The upper bound is a one-round
protocol built from a classic ``l_inf``-via-``l_2`` block sketch
(Saks–Sun [33]):

* partition the ``n`` coordinates of a column of ``C`` into ``ceil(n/kappa^2)``
  blocks of size ``kappa^2``;
* AMS-sketch each block with ``O(1)`` rows;
* since ``||y||_inf <= ||y||_2 <= kappa ||y||_inf`` for a block ``y`` of size
  ``kappa^2``, the largest block-``l_2`` estimate approximates ``||C||_inf``
  within a factor ``kappa`` (up to the AMS error).

Alice applies the sketch to her matrix (sending ``S A``, which has
``O~(n/kappa^2)`` rows and ``n`` columns, i.e. ``O~(n^2/kappa^2)`` entries);
Bob computes ``S A B`` locally and takes the maximum block estimate over all
columns.
"""

from __future__ import annotations

import math

import numpy as np

from repro.comm import bitcost
from repro.comm.party import Party
from repro.comm.protocol import Protocol


class GeneralMatrixLinfProtocol(Protocol):
    """One-round ``kappa``-approximation of ``||A B||_inf`` for integer matrices.

    Parameters
    ----------
    kappa:
        Target approximation factor (``1 <= kappa <= n``); the block size is
        ``kappa^2``.
    rows_per_block:
        AMS rows per block; more rows tighten the constant-factor ``l_2``
        estimation error.
    """

    name = "linf-general-blocked-ams"

    def __init__(
        self,
        kappa: float,
        *,
        rows_per_block: int = 24,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if kappa < 1:
            raise ValueError(f"kappa must be >= 1, got {kappa}")
        if rows_per_block < 1:
            raise ValueError("rows_per_block must be >= 1")
        self.kappa = float(kappa)
        self.rows_per_block = int(rows_per_block)

    def _execute(self, alice: Party, bob: Party):
        a = np.asarray(alice.data, dtype=np.int64)
        b = np.asarray(bob.data, dtype=np.int64)
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"inner dimensions differ: {a.shape} vs {b.shape}")
        n_rows = a.shape[0]

        block_size = max(1, min(n_rows, int(math.floor(self.kappa**2))))
        num_blocks = int(math.ceil(n_rows / block_size))

        # Block-diagonal sign sketch over the rows of C (shared randomness).
        sketch = np.zeros((num_blocks * self.rows_per_block, n_rows))
        block_of_row = np.arange(n_rows) // block_size
        signs = self.shared_rng.choice(
            np.array([-1.0, 1.0]), size=(num_blocks * self.rows_per_block, n_rows)
        )
        for block in range(num_blocks):
            members = block_of_row == block
            rows = slice(block * self.rows_per_block, (block + 1) * self.rows_per_block)
            sketch[rows, members] = signs[rows, members]

        sketched_a = sketch @ a.astype(float)
        alice.send(
            bob,
            sketched_a,
            label="sketch-of-A",
            bits=bitcost.bits_for_matrix(sketched_a),
        )

        sketched_c = sketched_a @ b.astype(float)  # (num_blocks * rows, n_cols)
        per_block = sketched_c.reshape(num_blocks, self.rows_per_block, -1)
        block_l2_estimates = np.sqrt(np.mean(per_block**2, axis=1))  # (num_blocks, n_cols)
        estimate = float(block_l2_estimates.max()) if block_l2_estimates.size else 0.0
        details = {
            "block_size": block_size,
            "num_blocks": num_blocks,
            "sketch_rows": int(sketch.shape[0]),
        }
        return estimate, details
