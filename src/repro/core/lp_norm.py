"""Algorithm 1: two-round (1 + eps)-approximation of ``||A B||_p``, ``p in [0, 2]``.

Theorem 3.1 of the paper.  The protocol:

1. *Rough estimation* (round 1, Bob -> Alice).  Bob sends ``S B^T`` where
   ``S`` is a linear ``l_p`` sketch with accuracy ``beta = sqrt(eps)``
   (``O~(1/beta^2) = O~(1/eps)`` rows).  Alice computes
   ``C~ = A (S B^T)^T = A B S^T`` whose ``i``-th row is the sketch of
   ``C_{i,*}``, and from it a ``(1 + beta)`` estimate of every row norm
   ``||C_{i,*}||_p^p``.

2. *Group sampling* (round 2, Alice -> Bob).  Alice partitions rows into
   geometric groups by estimated norm, samples each row of group ``G_l``
   with probability ``p_l ~ rho / |G_l| * ||G~_l||_p^p / ||C~||_p^p`` where
   ``rho = Theta(1/eps)``, and ships the sampled rows of ``A`` (plus their
   inverse sampling weights) to Bob.

3. Bob computes the sampled rows of ``C`` exactly and outputs the
   importance-weighted sum, a ``(1 +/- eps)`` estimate of ``||C||_p^p``.

Total communication ``O~(n/eps)`` — a ``1/eps`` factor better than the
one-round baseline of [16] (see :mod:`repro.baselines.one_round`).

The protocol body is exposed as :func:`two_round_lp_pp_estimate` so the
heavy-hitter protocols (Section 5) can reuse it as a subroutine on the same
channel, exactly as Corollary 5.2 prescribes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.comm import bitcost
from repro.comm.party import Party
from repro.comm.protocol import Protocol
from repro.sketch.lp_sketch import make_lp_sketch


def _assign_groups(row_estimates: np.ndarray, beta: float) -> np.ndarray:
    """Geometric grouping of rows by estimated norm.

    Group ``l`` holds rows with estimate in ``[(1+beta)^l, (1+beta)^{l+1})``;
    rows with estimate in ``(0, 1)`` share group 0 and zero rows get group -1
    (they are never sampled and contribute nothing to the sum).
    """
    group_of = np.full(row_estimates.shape, -1, dtype=np.int64)
    positive = row_estimates > 0
    log_base = math.log1p(beta)
    with np.errstate(divide="ignore"):
        raw = np.floor(np.log(row_estimates[positive]) / log_base)
    group_of[positive] = np.maximum(raw, 0).astype(np.int64)
    return group_of


def _sampling_probabilities(
    row_estimates: np.ndarray,
    group_of: np.ndarray,
    rho: float,
    total_estimate: float,
) -> np.ndarray:
    """Per-row sampling probability ``p_l`` from the paper, capped at 1."""
    probs = np.zeros(row_estimates.shape)
    for group in np.unique(group_of):
        if group < 0:
            continue
        members = group_of == group
        group_mass = float(np.sum(row_estimates[members]))
        group_size = int(np.count_nonzero(members))
        p_l = (rho / group_size) * (group_mass / total_estimate)
        probs[members] = min(1.0, p_l)
    return probs


def sample_block_rows(
    a: np.ndarray,
    row_estimates: np.ndarray,
    *,
    beta: float,
    rho: float,
    rng: np.random.Generator,
    total_rows: int,
    row_offset: int = 0,
) -> tuple[dict, int]:
    """Group-sample the rows of one block of ``A`` (Algorithm 1, round 2).

    Shared by the two-party protocol (one block = all of ``A``) and the
    k-party runtime (one block per site shard, identified by
    ``row_offset``), so the sampling logic and the round-2 bit-accounting
    formula cannot drift apart.  Returns ``(payload, bits)``; the payload's
    ``rows`` are global row indices.
    """
    block_total = float(np.sum(row_estimates))
    group_of = _assign_groups(row_estimates, beta)
    sample_probs = _sampling_probabilities(row_estimates, group_of, rho, block_total)
    sampled_mask = rng.uniform(size=a.shape[0]) < sample_probs
    sampled_rows = np.flatnonzero(sampled_mask)
    weights = 1.0 / sample_probs[sampled_rows]

    payload = {
        "rows": row_offset + sampled_rows,
        "weights": weights,
        "a_rows": a[sampled_rows],
    }
    is_binary = bool(np.all((a == 0) | (a == 1)))
    per_row_bits = a.shape[1] if is_binary else a.shape[1] * bitcost.INT_ENTRY_BITS
    bits = len(sampled_rows) * (
        per_row_bits + bitcost.bits_for_index(max(total_rows, 1)) + bitcost.FLOAT_BITS
    )
    return payload, bits


def weighted_block_pp(payload: dict, b: np.ndarray, p: float) -> float:
    """Receiver side of :func:`sample_block_rows`: exact importance-weighted
    contribution of one block's sampled rows to ``||A B||_p^p``."""
    if len(payload["rows"]) == 0:
        return 0.0
    sampled_c = payload["a_rows"] @ b
    if p == 0:
        row_pp = np.count_nonzero(sampled_c, axis=1).astype(float)
    else:
        row_pp = np.sum(np.abs(sampled_c.astype(float)) ** p, axis=1)
    return float(np.dot(payload["weights"], row_pp))


def two_round_lp_pp_estimate(
    alice: Party,
    bob: Party,
    *,
    p: float,
    epsilon: float,
    rho_constant: float,
    shared_rng: np.random.Generator,
    label_prefix: str = "",
) -> tuple[float, dict]:
    """Run Algorithm 1 on the parties' matrices over their shared channel.

    Returns ``(estimate_of ||A B||_p^p, details)``.  The estimate ends up in
    Bob's hands (he performs the final summation), matching the paper.
    """
    a = np.asarray(alice.data)
    b = np.asarray(bob.data)
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions differ: {a.shape} vs {b.shape}")
    n_inner = a.shape[1]
    n_rows = a.shape[0]

    beta = math.sqrt(epsilon)
    rho = rho_constant / epsilon

    # --- Round 1: Bob -> Alice, the row sketch S B^T -----------------------
    sketch = make_lp_sketch(b.shape[1], p, beta, shared_rng)
    sketched_bt = sketch.apply(b.T)  # shape (sketch rows, n_inner)
    bob.send(
        alice,
        sketched_bt,
        label=f"{label_prefix}round1/sketch-of-B",
        bits=bitcost.bits_for_matrix(sketched_bt),
    )

    # Alice: C~ = A (S B^T)^T; its i-th row is the sketch of C_{i,*}.
    c_tilde = a @ sketched_bt.T  # shape (n_rows, sketch rows)
    row_estimates = np.maximum(np.asarray(sketch.estimate_rows_pp(c_tilde), dtype=float), 0.0)
    total_estimate = float(np.sum(row_estimates))
    if total_estimate <= 0:
        alice.send(bob, 0, label=f"{label_prefix}round2/empty", bits=1)
        return 0.0, {"sampled_rows": 0, "beta": beta, "rho": rho}

    # --- Round 2: Alice -> Bob, group-sampled rows of A with weights --------
    payload, round2_bits = sample_block_rows(
        a, row_estimates, beta=beta, rho=rho, rng=alice.rng, total_rows=n_rows
    )
    alice.send(bob, payload, label=f"{label_prefix}round2/sampled-rows", bits=round2_bits)

    # Bob: exact norms of the sampled rows of C, importance-weighted sum.
    if len(payload["rows"]) == 0:
        return 0.0, {"sampled_rows": 0, "beta": beta, "rho": rho}
    estimate = weighted_block_pp(payload, b, p)
    details = {
        "sampled_rows": int(len(payload["rows"])),
        "beta": beta,
        "rho": rho,
        "rough_total": total_estimate,
    }
    return estimate, details


class LpNormProtocol(Protocol):
    """Two-round (1 + eps)-approximation of ``||A B||_p^p`` for ``p in [0, 2]``.

    Parameters
    ----------
    p:
        Norm parameter in ``[0, 2]`` (``p = 0`` counts non-zero entries).
    epsilon:
        Target relative accuracy.
    rho_constant:
        Oversampling constant: ``rho = rho_constant / epsilon`` rows are
        sampled in expectation.  The paper uses ``10^4``; the default here is
        laptop-scale and can be raised for tighter estimates.
    seed:
        Randomness seed (shared + private coins).
    """

    name = "lp-norm-two-round"

    def __init__(
        self,
        p: float,
        epsilon: float,
        *,
        rho_constant: float = 48.0,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if not 0 <= p <= 2:
            raise ValueError(f"p must be in [0, 2], got {p}")
        if not 0 < epsilon <= 1:
            raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
        if rho_constant <= 0:
            raise ValueError("rho_constant must be positive")
        self.p = float(p)
        self.epsilon = float(epsilon)
        self.rho_constant = float(rho_constant)

    def _execute(self, alice: Party, bob: Party):
        return two_round_lp_pp_estimate(
            alice,
            bob,
            p=self.p,
            epsilon=self.epsilon,
            rho_constant=self.rho_constant,
            shared_rng=self.shared_rng,
        )
