"""Algorithm 1: two-round (1 + eps)-approximation of ``||A B||_p``, ``p in [0, 2]``.

Theorem 3.1 of the paper.  The protocol:

1. *Rough estimation* (round 1, Bob -> Alice).  Bob sends ``S B^T`` where
   ``S`` is a linear ``l_p`` sketch with accuracy ``beta = sqrt(eps)``
   (``O~(1/beta^2) = O~(1/eps)`` rows).  Alice computes
   ``C~ = A (S B^T)^T = A B S^T`` whose ``i``-th row is the sketch of
   ``C_{i,*}``, and from it a ``(1 + beta)`` estimate of every row norm
   ``||C_{i,*}||_p^p``.

2. *Group sampling* (round 2, Alice -> Bob).  Alice partitions rows into
   geometric groups by estimated norm, samples each row of group ``G_l``
   with probability ``p_l ~ rho / |G_l| * ||G~_l||_p^p / ||C~||_p^p`` where
   ``rho = Theta(1/eps)``, and ships the sampled rows of ``A`` (plus their
   inverse sampling weights) to Bob.

3. Bob computes the sampled rows of ``C`` exactly and outputs the
   importance-weighted sum, a ``(1 +/- eps)`` estimate of ``||C||_p^p``.

Total communication ``O~(n/eps)`` — a ``1/eps`` factor better than the
one-round baseline of [16] (see :mod:`repro.baselines.one_round`).

The implementation lives in :mod:`repro.engine.lp_norm` (the star protocol
parameterized by the number of sites k); this class is the two-party
``k = 1`` facade, and the heavy-hitter protocols reuse the same body as a
subroutine exactly as Corollary 5.2 prescribes.
"""

from __future__ import annotations

from repro.core.facade import EngineBackedProtocol
from repro.engine.lp_norm import (  # noqa: F401  (re-exported for compatibility)
    StarLpNormProtocol,
    sample_block_rows,
    weighted_block_pp,
)

__all__ = ["LpNormProtocol", "sample_block_rows", "weighted_block_pp"]


class LpNormProtocol(EngineBackedProtocol):
    """Two-round (1 + eps)-approximation of ``||A B||_p^p`` for ``p in [0, 2]``.

    Parameters
    ----------
    p:
        Norm parameter in ``[0, 2]`` (``p = 0`` counts non-zero entries).
    epsilon:
        Target relative accuracy.
    rho_constant:
        Oversampling constant: ``rho = rho_constant / epsilon`` rows are
        sampled in expectation.  The paper uses ``10^4``; the default here is
        laptop-scale and can be raised for tighter estimates.
    seed:
        Randomness seed (shared + private coins).
    """

    name = "lp-norm-two-round"
    engine_protocol = StarLpNormProtocol
