"""Section 5.2 / Theorem 5.3: heavy hitters of ``A B`` for binary matrices.

For binary matrices (database joins) the communication improves to
``O~(n + phi/eps^2)`` bits by reusing the machinery of the ``l_inf``
protocols:

1. Both parties learn an estimate ``T`` of ``||C||_p^p`` (Algorithm 1).
2. Alice samples each *universe item* (column of ``A``) with probability
   ``beta = min(alpha / (phi^{1/p} T^{1/p}), 1)`` and the two parties run the
   per-item index exchange on the surviving items, obtaining an additive
   split ``C_A + C_B = C' = A' B``.
3. Every locally significant entry of ``C_A`` or ``C_B`` becomes a
   *candidate*; the candidates' true values ``C_ij`` are then estimated by
   sampling a shared random subset of coordinates of row ``A_{i,*}`` and
   column ``B_{*,j}`` (cost ``O~((phi/eps)^2)`` per candidate, and there are
   only ``O~(1/phi)`` candidates).
4. A candidate is reported iff its estimated ``|C_ij|^p`` is at least
   ``(phi - eps/2) T``.

The implementation lives in :mod:`repro.engine.heavy_hitters` (k-site);
this class is the two-party ``k = 1`` facade.
"""

from __future__ import annotations

from repro.core.facade import EngineBackedProtocol
from repro.engine.heavy_hitters import StarBinaryHeavyHittersProtocol

__all__ = ["BinaryHeavyHittersProtocol"]


class BinaryHeavyHittersProtocol(EngineBackedProtocol):
    """Heavy hitters of ``A B`` for binary matrices (Theorem 5.3).

    Parameters
    ----------
    phi, epsilon:
        Heaviness threshold and slack, ``0 < eps <= phi <= 1``.
    p:
        Norm parameter in ``(0, 2]``.
    alpha_constant:
        Constant in the universe-sampling rate (paper: ``10^4 log n``).
    verify_constant:
        Constant in the per-candidate verification sample size
        ``t = verify_constant * (phi/eps)^2 * log n`` (capped at ``n``).
    """

    name = "heavy-hitters-binary"
    engine_protocol = StarBinaryHeavyHittersProtocol
