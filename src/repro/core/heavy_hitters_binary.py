"""Section 5.2 / Theorem 5.3: heavy hitters of ``A B`` for binary matrices.

For binary matrices (database joins) the communication improves to
``O~(n + phi/eps^2)`` bits by reusing the machinery of the ``l_inf``
protocols:

1. Both parties learn an estimate ``T`` of ``||C||_p^p`` (Algorithm 1).
2. Alice samples each *universe item* (column of ``A``) with probability
   ``beta = min(alpha / (phi^{1/p} T^{1/p}), 1)`` and the two parties run the
   per-item index exchange on the surviving items, obtaining an additive
   split ``C_A + C_B = C' = A' B``.
3. Every locally significant entry of ``C_A`` or ``C_B`` becomes a
   *candidate*; the candidates' true values ``C_ij`` are then estimated by
   sampling a shared random subset of coordinates of row ``A_{i,*}`` and
   column ``B_{*,j}`` (cost ``O~((phi/eps)^2)`` per candidate, and there are
   only ``O~(1/phi)`` candidates).
4. A candidate is reported iff its estimated ``|C_ij|^p`` is at least
   ``(phi - eps/2) T``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.comm import bitcost
from repro.comm.party import Party
from repro.comm.protocol import Protocol
from repro.core.exchange import exchange_item_supports
from repro.core.lp_norm import two_round_lp_pp_estimate
from repro.core.result import HeavyHitterOutput


class BinaryHeavyHittersProtocol(Protocol):
    """Heavy hitters of ``A B`` for binary matrices (Theorem 5.3).

    Parameters
    ----------
    phi, epsilon:
        Heaviness threshold and slack, ``0 < eps <= phi <= 1``.
    p:
        Norm parameter in ``(0, 2]``.
    alpha_constant:
        Constant in the universe-sampling rate (paper: ``10^4 log n``).
    verify_constant:
        Constant in the per-candidate verification sample size
        ``t = verify_constant * (phi/eps)^2 * log n`` (capped at ``n``).
    """

    name = "heavy-hitters-binary"

    def __init__(
        self,
        phi: float,
        epsilon: float,
        *,
        p: float = 1.0,
        alpha_constant: float = 32.0,
        verify_constant: float = 16.0,
        rho_constant: float = 48.0,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if not 0 < epsilon <= phi <= 1:
            raise ValueError(f"need 0 < eps <= phi <= 1, got eps={epsilon}, phi={phi}")
        if not 0 < p <= 2:
            raise ValueError(f"p must be in (0, 2], got {p}")
        self.phi = float(phi)
        self.epsilon = float(epsilon)
        self.p = float(p)
        self.alpha_constant = float(alpha_constant)
        self.verify_constant = float(verify_constant)
        self.rho_constant = float(rho_constant)

    # ----------------------------------------------------------------- run
    def _execute(self, alice: Party, bob: Party):
        a = np.asarray(alice.data)
        b = np.asarray(bob.data)
        if not np.all((a == 0) | (a == 1)) or not np.all((b == 0) | (b == 1)):
            raise ValueError("binary heavy-hitter protocol requires 0/1 matrices")
        a = a.astype(np.int64)
        b = b.astype(np.int64)
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"inner dimensions differ: {a.shape} vs {b.shape}")
        n_items = a.shape[1]
        n = max(a.shape[0], n_items, b.shape[1])

        # --- Step 1: estimate T = ||C||_p^p ---------------------------------
        accuracy = min(0.5, self.epsilon / (4.0 * self.phi))
        total_pp, _ = two_round_lp_pp_estimate(
            alice,
            bob,
            p=self.p,
            epsilon=accuracy,
            rho_constant=self.rho_constant,
            shared_rng=self.shared_rng,
            label_prefix="hhb/",
        )
        if total_pp <= 0:
            return HeavyHitterOutput(), {"total_pp": 0.0, "beta": 1.0}
        bob.send(alice, total_pp, label="hhb/total-norm", bits=bitcost.FLOAT_BITS)
        lp_norm_estimate = total_pp ** (1.0 / self.p)

        # --- Step 2: universe sampling + index exchange ---------------------
        alpha = (self.alpha_constant * math.log(max(n, 2))) ** (1.0 / self.p)
        beta = min(alpha / (self.phi ** (1.0 / self.p) * lp_norm_estimate), 1.0)
        kept_items = alice.rng.uniform(size=n_items) < beta
        a_prime = a.copy()
        a_prime[:, ~kept_items] = 0

        c_alice, c_bob, exchange_info = exchange_item_supports(
            alice, bob, a_prime, b, label_prefix="hhb/", send_u_counts=True
        )

        # --- Step 3: candidate generation -----------------------------------
        candidate_threshold = (beta**self.p) * self.phi * total_pp / 20.0
        alice_candidates = {
            (int(i), int(j))
            for i, j in zip(*np.nonzero(c_alice.astype(float) ** self.p >= candidate_threshold))
        }
        bob_candidates = {
            (int(i), int(j))
            for i, j in zip(*np.nonzero(c_bob.astype(float) ** self.p >= candidate_threshold))
        }
        alice.send(
            bob,
            sorted(alice_candidates),
            label="hhb/alice-candidates",
            bits=bitcost.bits_for_int(len(alice_candidates))
            + len(alice_candidates) * 2 * bitcost.bits_for_index(max(n, 2)),
        )
        candidates = sorted(alice_candidates | bob_candidates)

        # --- Step 4: verification by shared coordinate sampling -------------
        sample_size = int(
            min(
                n_items,
                max(8, math.ceil(self.verify_constant * (self.phi / self.epsilon) ** 2
                                 * math.log(max(n, 2)))),
            )
        )
        sample_coords = self.shared_rng.choice(n_items, size=sample_size, replace=False)
        scale = n_items / sample_size

        candidate_rows = sorted({i for i, _ in candidates})
        rows_payload = {i: a[i, sample_coords] for i in candidate_rows}
        alice.send(
            bob,
            rows_payload,
            label="hhb/candidate-row-samples",
            bits=len(candidate_rows) * (sample_size + bitcost.bits_for_index(max(n, 2))),
        )

        output_threshold = (self.phi - self.epsilon / 2.0) * total_pp
        pairs = set()
        estimates: dict[tuple[int, int], float] = {}
        for i, j in candidates:
            overlap = float(np.dot(rows_payload[i], b[sample_coords, j]))
            estimate = overlap * scale if sample_size < n_items else overlap
            if estimate**self.p >= output_threshold:
                pairs.add((i, j))
                estimates[(i, j)] = estimate
        output = HeavyHitterOutput(pairs=pairs, estimates=estimates)
        details = {
            "total_pp": total_pp,
            "beta": beta,
            "candidates": len(candidates),
            "verification_sample_size": sample_size,
            "exchanged_indices": exchange_info["exchanged_indices"],
        }
        return output, details
