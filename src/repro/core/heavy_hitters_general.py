"""Algorithm 4 / Corollary 5.2: ``l_p``-(phi, eps) heavy hitters of ``A B``.

The goal is a set ``S`` with ``HH^p_phi(C) ⊆ S ⊆ HH^p_{phi-eps}(C)`` where
``HH^p_phi(C) = {(i,j) : |C_ij|^p >= phi ||C||_p^p}``.

Protocol (general non-negative integer matrices, ``O~((sqrt(phi)/eps) n)``
bits, ``O(1)`` rounds):

1. Both parties learn ``T ~= ||C||_p^p``: exactly via Remark 2 when
   ``p = 1``, otherwise with Algorithm 1 at accuracy ``eps/(4 phi)``
   (Corollary 5.2's prescription).
2. Alice samples each non-zero entry of ``A`` with probability
   ``beta = min(c log n / ((eps/phi)^2 * (phi/8) * T), 1)``, scaling ``C``
   down to ``C^beta`` with ``E[C^beta] = beta C`` while keeping every heavy
   entry detectable.
3. The non-zero entries of ``C^beta`` are recovered exactly as an additive
   split via the distributed sparse-product protocol (Lemma 2.5 substitute).
4. Alice forwards her share's significant entries; Bob thresholds
   ``C' = C'_A + C_B`` at ``beta * ((phi - eps/2) T)^{1/p}`` and reports the
   surviving pairs with their rescaled estimates.

The implementation lives in :mod:`repro.engine.heavy_hitters` (k-site,
mergeable per-site summaries); this class is the two-party ``k = 1`` facade.
"""

from __future__ import annotations

from repro.core.facade import EngineBackedProtocol
from repro.engine.heavy_hitters import (  # noqa: F401  (re-exported for compatibility)
    StarHeavyHittersProtocol,
    entry_sampling_rate,
    forward_threshold,
    report_heavy_entries,
)

__all__ = [
    "GeneralHeavyHittersProtocol",
    "entry_sampling_rate",
    "forward_threshold",
    "report_heavy_entries",
]


class GeneralHeavyHittersProtocol(EngineBackedProtocol):
    """Heavy hitters of ``A B`` for non-negative integer matrices.

    Parameters
    ----------
    phi:
        Heaviness threshold (``0 < eps <= phi <= 1``).
    epsilon:
        Slack of the output set (entries between ``phi - eps`` and ``phi``
        may or may not be reported).
    p:
        Norm parameter in ``(0, 2]``; ``p = 1`` is the faithful Algorithm 4,
        other values follow Corollary 5.2.
    beta_constant:
        Constant in the sampling rate (the paper's ``10^4 log n``).
    """

    name = "heavy-hitters-general"
    engine_protocol = StarHeavyHittersProtocol
