"""Algorithm 4 / Corollary 5.2: ``l_p``-(phi, eps) heavy hitters of ``A B``.

The goal is a set ``S`` with ``HH^p_phi(C) ⊆ S ⊆ HH^p_{phi-eps}(C)`` where
``HH^p_phi(C) = {(i,j) : |C_ij|^p >= phi ||C||_p^p}``.

Protocol (general non-negative integer matrices, ``O~((sqrt(phi)/eps) n)``
bits, ``O(1)`` rounds):

1. Both parties learn ``T ~= ||C||_p^p``: exactly via Remark 2 when
   ``p = 1``, otherwise with Algorithm 1 at accuracy ``eps/(4 phi)``
   (Corollary 5.2's prescription).
2. Alice samples each non-zero entry of ``A`` with probability
   ``beta = min(c log n / ((eps/phi)^2 * (phi/8) * T), 1)``, scaling ``C``
   down to ``C^beta`` with ``E[C^beta] = beta C`` while keeping every heavy
   entry detectable.
3. The non-zero entries of ``C^beta`` are recovered exactly as an additive
   split ``C_A + C_B`` via the distributed sparse-product protocol
   (Lemma 2.5 substitute, :mod:`repro.distmm.sparse_product`).
4. Alice forwards her share's significant entries; Bob thresholds
   ``C' = C'_A + C_B`` at ``beta * ((phi - eps/2) T)^{1/p}`` and reports the
   surviving pairs with their rescaled estimates.
"""

from __future__ import annotations

import math

import numpy as np

from repro.comm import bitcost
from repro.comm.party import Party
from repro.comm.protocol import Protocol
from repro.core.lp_norm import two_round_lp_pp_estimate
from repro.core.result import HeavyHitterOutput
from repro.distmm.sparse_product import sparse_product_shares


def entry_sampling_rate(
    phi: float, epsilon: float, p: float, *, beta_constant: float, n: int, total_pp: float
) -> float:
    """Step 2's down-sampling rate ``beta`` (shared with the k-party runtime)."""
    heavy_value = ((phi / 8.0) * total_pp) ** (1.0 / p)
    return min(
        beta_constant
        * math.log(max(n, 2))
        / ((epsilon / phi) ** 2 * max(heavy_value, 1e-12)),
        1.0,
    )


def forward_threshold(
    phi: float, epsilon: float, p: float, beta: float, total_pp: float
) -> float:
    """Step 4's threshold for forwarding locally significant entries."""
    if p == 1.0:
        # Faithful Algorithm 4 threshold for the forwarded entries.
        return epsilon * beta * total_pp / 8.0
    return beta * ((max(phi - epsilon, 0.0)) * total_pp) ** (1.0 / p) / 2.0


def report_heavy_entries(
    c_prime: np.ndarray, *, phi: float, epsilon: float, p: float, beta: float, total_pp: float
) -> tuple[HeavyHitterOutput, float]:
    """Final thresholding of ``C'``: the reported pairs with rescaled estimates.

    Returns ``(output, output_threshold)``; shared by the two-party and
    k-party protocols so the reporting rule cannot drift between runtimes.
    """
    if p == 1.0:
        output_threshold = beta * (phi - epsilon / 2.0) * total_pp
    else:
        output_threshold = beta * ((phi - epsilon / 2.0) * total_pp) ** (1.0 / p)
    pairs = set()
    estimates: dict[tuple[int, int], float] = {}
    for i, j in zip(*np.nonzero(c_prime >= output_threshold)):
        pair = (int(i), int(j))
        pairs.add(pair)
        estimates[pair] = float(c_prime[i, j] / beta)
    return HeavyHitterOutput(pairs=pairs, estimates=estimates), output_threshold


class GeneralHeavyHittersProtocol(Protocol):
    """Heavy hitters of ``A B`` for non-negative integer matrices.

    Parameters
    ----------
    phi:
        Heaviness threshold (``0 < eps <= phi <= 1``).
    epsilon:
        Slack of the output set (entries between ``phi - eps`` and ``phi``
        may or may not be reported).
    p:
        Norm parameter in ``(0, 2]``; ``p = 1`` is the faithful Algorithm 4,
        other values follow Corollary 5.2.
    beta_constant:
        Constant in the sampling rate (the paper's ``10^4 log n``).
    """

    name = "heavy-hitters-general"

    def __init__(
        self,
        phi: float,
        epsilon: float,
        *,
        p: float = 1.0,
        beta_constant: float = 64.0,
        rho_constant: float = 48.0,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if not 0 < epsilon <= phi <= 1:
            raise ValueError(f"need 0 < eps <= phi <= 1, got eps={epsilon}, phi={phi}")
        if not 0 < p <= 2:
            raise ValueError(f"p must be in (0, 2], got {p}")
        self.phi = float(phi)
        self.epsilon = float(epsilon)
        self.p = float(p)
        self.beta_constant = float(beta_constant)
        self.rho_constant = float(rho_constant)

    # ----------------------------------------------------------------- run
    def _execute(self, alice: Party, bob: Party):
        a = np.asarray(alice.data, dtype=np.int64)
        b = np.asarray(bob.data, dtype=np.int64)
        if np.any(a < 0) or np.any(b < 0):
            raise ValueError("heavy-hitter protocol requires non-negative matrices")
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"inner dimensions differ: {a.shape} vs {b.shape}")
        n = max(a.shape[0], a.shape[1], b.shape[1])

        # --- Step 1: both parties learn T ~ ||C||_p^p -----------------------
        total_pp = self._estimate_total_pp(alice, bob, a, b)
        if total_pp <= 0:
            return HeavyHitterOutput(), {"total_pp": 0.0, "beta": 1.0}
        bob.send(alice, total_pp, label="hh/total-norm", bits=bitcost.FLOAT_BITS)

        # --- Step 2: Alice scales C down by entry sampling ------------------
        beta = entry_sampling_rate(
            self.phi, self.epsilon, self.p,
            beta_constant=self.beta_constant, n=n, total_pp=total_pp,
        )
        keep = alice.rng.uniform(size=a.shape) < beta
        a_beta = np.where((a != 0) & keep, a, 0).astype(np.int64)

        # --- Step 3: distributed recovery of C^beta = C_A + C_B -------------
        c_alice, c_bob = self._sparse_product_exchange(alice, bob, a_beta, b)

        # --- Step 4: Alice forwards significant entries, Bob thresholds -----
        report_threshold = forward_threshold(
            self.phi, self.epsilon, self.p, beta, total_pp
        )
        heavy_alice = {
            (int(i), int(j)): int(c_alice[i, j])
            for i, j in zip(*np.nonzero(c_alice > report_threshold))
        }
        alice_bits = bitcost.bits_for_int(len(heavy_alice)) + len(heavy_alice) * (
            2 * bitcost.bits_for_index(max(n, 2)) + bitcost.INT_ENTRY_BITS
        )
        alice.send(bob, heavy_alice, label="hh/alice-heavy-entries", bits=alice_bits)

        c_prime = c_bob.astype(float)
        for (i, j), value in heavy_alice.items():
            c_prime[i, j] += value

        output, output_threshold = report_heavy_entries(
            c_prime,
            phi=self.phi, epsilon=self.epsilon, p=self.p, beta=beta, total_pp=total_pp,
        )
        details = {
            "total_pp": total_pp,
            "beta": beta,
            "scaled_nonzeros": int(np.count_nonzero(c_alice) + np.count_nonzero(c_bob)),
            "output_threshold": output_threshold,
        }
        return output, details

    # ------------------------------------------------------------ internals
    def _estimate_total_pp(
        self, alice: Party, bob: Party, a: np.ndarray, b: np.ndarray
    ) -> float:
        """Step 1: ``||C||_p^p`` — exact (Remark 2) for p=1, Algorithm 1 otherwise."""
        if self.p == 1.0:
            column_sums = a.sum(axis=0)
            bits = a.shape[1] * bitcost.bits_for_int(int(max(column_sums.max(), 1)))
            alice.send(bob, column_sums, label="hh/column-sums", bits=bits)
            return float(column_sums.astype(float) @ b.sum(axis=1).astype(float))
        accuracy = min(0.5, self.epsilon / (4.0 * self.phi))
        estimate, _ = two_round_lp_pp_estimate(
            alice,
            bob,
            p=self.p,
            epsilon=accuracy,
            rho_constant=self.rho_constant,
            shared_rng=self.shared_rng,
            label_prefix="hh/",
        )
        return float(estimate)

    @staticmethod
    def _sparse_product_exchange(
        alice: Party, bob: Party, a_beta: np.ndarray, b: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Lemma 2.5 substitute run inline on the enclosing channel."""
        n_items = a_beta.shape[1]
        u = np.count_nonzero(a_beta, axis=0)
        v = np.count_nonzero(b, axis=1)
        alice.send(
            bob,
            u,
            label="hh/sparse-product-counts",
            bits=n_items * bitcost.bits_for_index(max(int(a_beta.shape[0]) + 1, 2)),
        )

        active = (u > 0) & (v > 0)
        bob_ships = active & (v < u)
        alice_ships = active & (v >= u)
        values_are_binary = bool(
            np.all((a_beta == 0) | (a_beta == 1)) and np.all((b == 0) | (b == 1))
        )
        value_bits = 0 if values_are_binary else bitcost.INT_ENTRY_BITS

        bob_bits = n_items
        for j in np.flatnonzero(bob_ships):
            count = int(np.count_nonzero(b[j, :]))
            bob_bits += count * (bitcost.bits_for_index(max(b.shape[1], 1)) + value_bits)
        bob.send(alice, {"items": np.flatnonzero(bob_ships)}, label="hh/bob-lists", bits=bob_bits)

        alice_bits = 0
        for j in np.flatnonzero(alice_ships):
            count = int(np.count_nonzero(a_beta[:, j]))
            alice_bits += count * (bitcost.bits_for_index(max(a_beta.shape[0], 1)) + value_bits)
        alice.send(
            bob, {"items": np.flatnonzero(alice_ships)}, label="hh/alice-lists", bits=alice_bits
        )

        # Ownership: Bob accumulates items Alice shipped, and vice versa.
        c_alice, c_bob = sparse_product_shares(a_beta, b, owner_is_bob=alice_ships)
        return c_alice, c_bob
