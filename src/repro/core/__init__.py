"""The paper's protocols: statistical estimation of ``C = A B`` between two parties.

Every protocol is a :class:`repro.comm.protocol.Protocol` subclass; calling
``run(A, B)`` executes it on a metered in-process channel and returns a
:class:`repro.comm.protocol.ProtocolResult` with the estimate and the exact
communication cost (bits, rounds).
"""

from repro.core.api import MatrixProductEstimator
from repro.core.boosting import MedianBoostedProtocol
from repro.core.heavy_hitters_binary import BinaryHeavyHittersProtocol
from repro.core.heavy_hitters_general import GeneralHeavyHittersProtocol
from repro.core.l0_sampling import L0SamplingProtocol
from repro.core.l1_exact import ExactL1Protocol, L1SamplingProtocol
from repro.core.linf_binary import KappaApproxLinfProtocol, TwoPlusEpsilonLinfProtocol
from repro.core.linf_general import GeneralMatrixLinfProtocol
from repro.core.lp_norm import LpNormProtocol
from repro.core.result import HeavyHitterOutput, SampleOutput

__all__ = [
    "MatrixProductEstimator",
    "MedianBoostedProtocol",
    "BinaryHeavyHittersProtocol",
    "GeneralHeavyHittersProtocol",
    "L0SamplingProtocol",
    "ExactL1Protocol",
    "L1SamplingProtocol",
    "KappaApproxLinfProtocol",
    "TwoPlusEpsilonLinfProtocol",
    "GeneralMatrixLinfProtocol",
    "LpNormProtocol",
    "HeavyHitterOutput",
    "SampleOutput",
]
