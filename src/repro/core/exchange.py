"""The per-item index-exchange primitive shared by Algorithms 2, 3 and 5.2.

The implementation lives in :mod:`repro.engine.exchange`
(:func:`~repro.engine.exchange.star_exchange_item_supports`), written once
against the star topology.  This module keeps the historical two-party
entry point: given Alice and Bob :class:`~repro.comm.party.Party` endpoints
sharing a channel, it runs the same exchange over the channel's underlying
one-leaf star (Alice as the site, Bob as the hub).

Given Alice's (possibly subsampled) binary matrix ``A'`` and Bob's binary
matrix ``B``, both parties learn an additive split ``C_A + C_B = A' B``;
the total shipped volume is ``sum_j min(u_j, v_j)`` indices, the quantity
bounded by ``O~(n^{1.5}/eps)`` (Theorem 4.1) / ``O~(n^{1.5}/kappa)``
(Theorem 4.3) in the paper's analyses.
"""

from __future__ import annotations

import numpy as np

from repro.comm.party import Party
from repro.engine.exchange import star_exchange_item_supports
from repro.engine.topology import Coordinator, Site

__all__ = ["exchange_item_supports"]


def exchange_item_supports(
    alice: Party,
    bob: Party,
    a_sub: np.ndarray,
    b: np.ndarray,
    *,
    label_prefix: str = "",
    send_u_counts: bool = True,
) -> tuple[np.ndarray, np.ndarray, dict]:
    """Run the index exchange; returns ``(C_A, C_B, info)``.

    Parameters
    ----------
    alice, bob:
        The two endpoints; they must be the two ends of the shared channel.
    a_sub:
        Alice's (subsampled) binary matrix ``A'`` of shape ``(m1, n)``.
    b:
        Bob's binary matrix of shape ``(n, m2)``.
    send_u_counts:
        Whether Alice's ``u_j`` counts still need to be transmitted.  An
        enclosing protocol that already sent column sums for the chosen
        level (Algorithm 2 sends them for *all* levels in round 1) sets this
        to False to avoid double-charging.
    """
    network = alice.channel.network
    site = Site(alice.name, a_sub, network, rng=alice.rng)
    coordinator = Coordinator(b, network, rng=bob.rng)
    site_shares, c_coord, info = star_exchange_item_supports(
        coordinator,
        [site],
        [np.asarray(a_sub)],
        np.asarray(b),
        label_prefix=label_prefix,
        send_u_counts=send_u_counts,
    )
    # Two-party aliases for the star-named ownership counters.
    info["alice_items"] = info["site_owned_items"]
    info["bob_items"] = info["coordinator_owned_items"]
    return site_shares[0], c_coord, info
