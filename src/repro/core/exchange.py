"""The per-item index-exchange primitive shared by Algorithms 2, 3 and 5.2.

Given Alice's (possibly subsampled) binary matrix ``A'`` and Bob's binary
matrix ``B``, both parties learn an additive split ``C_A + C_B = A' B``:

* Alice announces ``u_j`` = number of rows of ``A'`` containing item ``j``
  (she may have done so already as part of an enclosing protocol).
* Bob compares with ``v_j`` = number of columns of ``B`` containing item
  ``j``; for every item with ``u_j > v_j`` he ships his index list
  ``I_j = {j' : B_{j,j'} = 1}`` to Alice, who accumulates those items'
  contributions into ``C_A``.
* Alice ships her index lists for the remaining (non-trivial) items and Bob
  accumulates them into ``C_B``.

The total shipped volume is ``sum_j min(u_j, v_j)`` indices, the quantity
bounded by ``O~(n^{1.5}/eps)`` (Theorem 4.1) / ``O~(n^{1.5}/kappa)``
(Theorem 4.3) in the paper's analyses.
"""

from __future__ import annotations

import numpy as np

from repro.comm import bitcost
from repro.comm.party import Party


def exchange_item_supports(
    alice: Party,
    bob: Party,
    a_sub: np.ndarray,
    b: np.ndarray,
    *,
    label_prefix: str = "",
    send_u_counts: bool = True,
) -> tuple[np.ndarray, np.ndarray, dict]:
    """Run the index exchange; returns ``(C_A, C_B, info)``.

    Parameters
    ----------
    a_sub:
        Alice's (subsampled) binary matrix ``A'`` of shape ``(m1, n)``.
    b:
        Bob's binary matrix of shape ``(n, m2)``.
    send_u_counts:
        Whether Alice's ``u_j`` counts still need to be transmitted.  An
        enclosing protocol that already sent column sums for the chosen
        level (Algorithm 2 sends them for *all* levels in round 1) sets this
        to False to avoid double-charging.
    """
    a_sub = np.asarray(a_sub, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a_sub.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions differ: {a_sub.shape} vs {b.shape}")
    n_items = a_sub.shape[1]

    u = a_sub.sum(axis=0)
    v = b.sum(axis=1)

    if send_u_counts:
        alice.send(
            bob,
            u,
            label=f"{label_prefix}item-counts",
            bits=n_items * bitcost.bits_for_index(max(int(a_sub.shape[0]) + 1, 2)),
        )

    active = (u > 0) & (v > 0)
    bob_ships = active & (u > v)
    alice_ships = active & (u <= v)

    # Bob -> Alice: his column-index lists for items where his side is smaller.
    bob_bits = n_items  # bitmap announcing which items he covers
    bob_payload = {}
    for j in np.flatnonzero(bob_ships):
        indices = np.flatnonzero(b[j, :])
        bob_payload[int(j)] = indices
        bob_bits += bitcost.bits_for_index_list(indices, max(b.shape[1], 1))
    bob.send(alice, bob_payload, label=f"{label_prefix}bob-item-lists", bits=bob_bits)

    # Alice -> Bob: her row-index lists for the remaining items.
    alice_bits = 0
    alice_payload = {}
    for j in np.flatnonzero(alice_ships):
        indices = np.flatnonzero(a_sub[:, j])
        alice_payload[int(j)] = indices
        alice_bits += bitcost.bits_for_index_list(indices, max(a_sub.shape[0], 1))
    alice.send(bob, alice_payload, label=f"{label_prefix}alice-item-lists", bits=alice_bits)

    # Local accumulation: Alice owns the items Bob shipped, Bob the items
    # Alice shipped.  Matrix products over the item subsets give the shares.
    c_alice = a_sub[:, bob_ships] @ b[bob_ships, :]
    c_bob = a_sub[:, alice_ships] @ b[alice_ships, :]
    info = {
        "u": u,
        "v": v,
        "exchanged_indices": int(np.minimum(u, v)[active].sum()),
        "alice_items": int(bob_ships.sum()),
        "bob_items": int(alice_ships.sum()),
    }
    return c_alice, c_bob, info
