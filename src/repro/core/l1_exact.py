"""Remark 2 and Remark 3: exact ``||A B||_1`` and ``l_1``-sampling in one round.

For entrywise non-negative matrices (in particular binary matrices / database
joins) the natural-join size ``||A B||_1`` factorises over the shared
attribute:

    ``||A B||_1 = sum_j ||A_{*,j}||_1 * ||B_{j,*}||_1``

so Alice only needs to send her ``n`` column sums (Remark 2).  Sampling an
entry of ``C`` proportionally to its value reduces to sampling the shared
item ``j`` proportionally to ``||A_{*,j}||_1 ||B_{j,*}||_1`` and then a
random "witness" on each side (Remark 3).  Both protocols use ``O(n log n)``
bits and one round.

The implementations live in :mod:`repro.engine.l1` (k-site, mergeable
column sums); these classes are the two-party ``k = 1`` facades.
"""

from __future__ import annotations

from repro.core.facade import EngineBackedProtocol
from repro.engine.l1 import StarExactL1Protocol, StarL1SamplingProtocol

__all__ = ["ExactL1Protocol", "L1SamplingProtocol"]


class ExactL1Protocol(EngineBackedProtocol):
    """Remark 2: exact ``||A B||_1`` with ``O(n log n)`` bits, one round."""

    name = "l1-exact-one-round"
    engine_protocol = StarExactL1Protocol


class L1SamplingProtocol(EngineBackedProtocol):
    """Remark 3: ``l_1``-sampling of an entry of ``A B`` in one round.

    Returns a :class:`repro.core.result.SampleOutput` whose ``(row, col)`` is
    distributed proportionally to ``C_{row, col}`` (for non-negative inputs).
    """

    name = "l1-sampling-one-round"
    engine_protocol = StarL1SamplingProtocol
