"""Remark 2 and Remark 3: exact ``||A B||_1`` and ``l_1``-sampling in one round.

For entrywise non-negative matrices (in particular binary matrices / database
joins) the natural-join size ``||A B||_1`` factorises over the shared
attribute:

    ``||A B||_1 = sum_j ||A_{*,j}||_1 * ||B_{j,*}||_1``

so Alice only needs to send her ``n`` column sums (Remark 2).  Sampling an
entry of ``C`` proportionally to its value reduces to sampling the shared
item ``j`` proportionally to ``||A_{*,j}||_1 ||B_{j,*}||_1`` and then a
random "witness" on each side (Remark 3).  Both protocols use ``O(n log n)``
bits and one round.
"""

from __future__ import annotations

import numpy as np

from repro.comm import bitcost
from repro.comm.party import Party
from repro.comm.protocol import Protocol
from repro.core.result import SampleOutput


def _check_nonnegative(matrix: np.ndarray, who: str) -> np.ndarray:
    matrix = np.asarray(matrix)
    if np.any(matrix < 0):
        raise ValueError(
            f"{who}'s matrix has negative entries; Remark 2/3 require "
            "entrywise non-negative matrices (e.g. binary join matrices)"
        )
    return matrix


class ExactL1Protocol(Protocol):
    """Remark 2: exact ``||A B||_1`` with ``O(n log n)`` bits, one round."""

    name = "l1-exact-one-round"

    def _execute(self, alice: Party, bob: Party):
        a = _check_nonnegative(alice.data, "Alice")
        b = _check_nonnegative(bob.data, "Bob")
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"inner dimensions differ: {a.shape} vs {b.shape}")

        column_sums = a.sum(axis=0)
        bits = a.shape[1] * bitcost.bits_for_int(int(max(column_sums.max(), 1)))
        alice.send(bob, column_sums, label="column-sums", bits=bits)

        row_sums = b.sum(axis=1)
        value = float(np.dot(column_sums.astype(float), row_sums.astype(float)))
        return value, {"column_sums_bits": bits}


class L1SamplingProtocol(Protocol):
    """Remark 3: ``l_1``-sampling of an entry of ``A B`` in one round.

    Returns a :class:`repro.core.result.SampleOutput` whose ``(row, col)`` is
    distributed proportionally to ``C_{row, col}`` (for non-negative inputs).
    """

    name = "l1-sampling-one-round"

    def _execute(self, alice: Party, bob: Party):
        a = _check_nonnegative(alice.data, "Alice")
        b = _check_nonnegative(bob.data, "Bob")
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"inner dimensions differ: {a.shape} vs {b.shape}")
        n_inner = a.shape[1]

        column_sums = a.sum(axis=0).astype(float)
        # One witness row index per shared item j, sampled proportionally to
        # the column values A_{*, j}.
        witnesses = np.full(n_inner, -1, dtype=np.int64)
        for j in range(n_inner):
            if column_sums[j] > 0:
                probabilities = a[:, j] / column_sums[j]
                witnesses[j] = alice.rng.choice(a.shape[0], p=probabilities)
        bits = n_inner * (
            bitcost.bits_for_int(int(max(column_sums.max(), 1)))
            + bitcost.bits_for_index(max(a.shape[0], 1))
        )
        alice.send(
            bob,
            {"column_sums": column_sums, "witnesses": witnesses},
            label="column-sums+witnesses",
            bits=bits,
        )

        row_sums = b.sum(axis=1).astype(float)
        masses = column_sums * row_sums
        total = masses.sum()
        if total <= 0:
            return SampleOutput(row=None, col=None), {"total_mass": 0.0}
        j = int(bob.rng.choice(n_inner, p=masses / total))
        col_probabilities = b[j, :] / row_sums[j]
        col = int(bob.rng.choice(b.shape[1], p=col_probabilities))
        row = int(witnesses[j])
        return SampleOutput(row=row, col=col), {"total_mass": float(total), "item": j}
