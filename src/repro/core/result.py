"""Typed outputs for the sampling and heavy-hitter protocols."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SampleOutput:
    """An entry of ``C = A B`` returned by a sampling protocol.

    ``row`` and ``col`` identify the sampled entry (or are ``None`` when the
    sampler failed, which happens with small probability); ``value`` is the
    entry's value when the protocol learns it.
    """

    row: int | None
    col: int | None
    value: float | None = None

    @property
    def success(self) -> bool:
        return self.row is not None and self.col is not None

    def as_pair(self) -> tuple[int, int]:
        if not self.success:
            raise ValueError("sampling failed; no pair available")
        return (int(self.row), int(self.col))


@dataclass
class HeavyHitterOutput:
    """Output of an ``l_p``-(phi, eps) heavy-hitter protocol.

    ``pairs`` is the reported set ``S`` with ``HH_phi(C) ⊆ S ⊆ HH_{phi-eps}(C)``
    (with the protocol's success probability); ``estimates`` maps each
    reported pair to the protocol's estimate of ``C_{ij}``.
    """

    pairs: set[tuple[int, int]] = field(default_factory=set)
    estimates: dict[tuple[int, int], float] = field(default_factory=dict)

    def __contains__(self, pair: tuple[int, int]) -> bool:
        return tuple(pair) in self.pairs

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(sorted(self.pairs))
