"""High-level facade over the paper's protocols.

:class:`MatrixProductEstimator` is the entry point most users want: it holds
Alice's and Bob's matrices, picks the right protocol for each query, and
returns :class:`repro.comm.protocol.ProtocolResult` objects that carry both
the estimate and the exact communication cost.  The query dispatch itself is
shared with the k-site :class:`repro.multiparty.estimator.ClusterEstimator`
via :class:`repro.engine.api.EstimatorBase`; this class only pins the data
to the two-party topology.

Example
-------
>>> import numpy as np
>>> from repro import MatrixProductEstimator
>>> rng = np.random.default_rng(0)
>>> a = (rng.uniform(size=(64, 64)) < 0.1).astype(int)
>>> b = (rng.uniform(size=(64, 64)) < 0.1).astype(int)
>>> est = MatrixProductEstimator(a, b, seed=0)
>>> result = est.lp_norm(p=0, epsilon=0.3)
>>> result.value > 0
True
"""

from __future__ import annotations

import numpy as np

from repro.comm.protocol import ProtocolResult
from repro.engine.api import EstimatorBase, is_binary_data
from repro.engine.base import StarProtocol


class MatrixProductEstimator(EstimatorBase):
    """Distributed statistics of ``C = A B`` between Alice (``A``) and Bob (``B``).

    Parameters
    ----------
    a, b:
        The two parties' matrices, with compatible inner dimensions.
    seed:
        Base seed; each query derives an independent stream from it.
    runtime, conditions:
        Optional execution runtime (executor choice) and per-link timing
        model, forwarded to every query (see
        :class:`repro.engine.api.EstimatorBase`).
    """

    def __init__(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        seed: int | None = None,
        runtime=None,
        conditions=None,
        transport=None,
    ) -> None:
        super().__init__(
            seed=seed, runtime=runtime, conditions=conditions, transport=transport
        )
        a = np.asarray(a)
        b = np.asarray(b)
        if a.ndim != 2 or b.ndim != 2:
            raise ValueError("a and b must be 2-dimensional matrices")
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"inner dimensions differ: {a.shape} vs {b.shape}")
        self.a = a
        self.b = b
        self.is_binary = is_binary_data(a, b)

    def _run(self, protocol: StarProtocol) -> ProtocolResult:
        return protocol.run_two_party(
            self.a,
            self.b,
            runtime=self.runtime,
            conditions=self.conditions,
            transport=self.transport,
        )

    # ------------------------------------------------------------- scale-out
    def as_cluster(self, num_sites: int, *, seed: int | None = None):
        """Re-home this estimator in the k-site coordinator model.

        The rows of ``A`` are sharded evenly across ``num_sites`` sites and
        ``B`` moves to the coordinator; the returned
        :class:`repro.multiparty.ClusterEstimator` answers the same queries
        over the metered star network.  With ``num_sites=2`` the k-party
        runtime reduces to the two-party protocols.  This estimator's
        runtime and network conditions carry over (link models keyed by the
        two-party names will be rejected loudly by the wider star rather
        than silently ignored).
        """
        from repro.multiparty.estimator import ClusterEstimator

        return ClusterEstimator.from_matrix(
            self.a,
            self.b,
            num_sites,
            seed=seed,
            runtime=self.runtime,
            conditions=self.conditions,
        )
