"""High-level facade over the paper's protocols.

:class:`MatrixProductEstimator` is the entry point most users want: it holds
Alice's and Bob's matrices, picks the right protocol for each query, and
returns :class:`repro.comm.protocol.ProtocolResult` objects that carry both
the estimate and the exact communication cost.

Example
-------
>>> import numpy as np
>>> from repro import MatrixProductEstimator
>>> rng = np.random.default_rng(0)
>>> a = (rng.uniform(size=(64, 64)) < 0.1).astype(int)
>>> b = (rng.uniform(size=(64, 64)) < 0.1).astype(int)
>>> est = MatrixProductEstimator(a, b, seed=0)
>>> result = est.lp_norm(p=0, epsilon=0.3)
>>> result.value > 0
True
"""

from __future__ import annotations

import numpy as np

from repro.comm.protocol import ProtocolResult
from repro.core.heavy_hitters_binary import BinaryHeavyHittersProtocol
from repro.core.heavy_hitters_general import GeneralHeavyHittersProtocol
from repro.core.l0_sampling import L0SamplingProtocol
from repro.core.l1_exact import ExactL1Protocol, L1SamplingProtocol
from repro.core.linf_binary import KappaApproxLinfProtocol, TwoPlusEpsilonLinfProtocol
from repro.core.linf_general import GeneralMatrixLinfProtocol
from repro.core.lp_norm import LpNormProtocol


class MatrixProductEstimator:
    """Distributed statistics of ``C = A B`` between Alice (``A``) and Bob (``B``).

    Parameters
    ----------
    a, b:
        The two parties' matrices, with compatible inner dimensions.
    seed:
        Base seed; each query derives an independent stream from it.
    """

    def __init__(self, a: np.ndarray, b: np.ndarray, *, seed: int | None = None) -> None:
        a = np.asarray(a)
        b = np.asarray(b)
        if a.ndim != 2 or b.ndim != 2:
            raise ValueError("a and b must be 2-dimensional matrices")
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"inner dimensions differ: {a.shape} vs {b.shape}")
        self.a = a
        self.b = b
        self._seed_stream = np.random.default_rng(seed)
        self.is_binary = bool(
            np.all((a == 0) | (a == 1)) and np.all((b == 0) | (b == 1))
        )

    def _next_seed(self) -> int:
        return int(self._seed_stream.integers(0, 2**31 - 1))

    # ------------------------------------------------------------------ lp
    def lp_norm(self, p: float, epsilon: float = 0.25, **kwargs) -> ProtocolResult:
        """(1 + eps)-approximation of ``||A B||_p^p`` for ``p in [0, 2]`` (Thm 3.1)."""
        protocol = LpNormProtocol(p, epsilon, seed=self._next_seed(), **kwargs)
        return protocol.run(self.a, self.b)

    def join_size(self, epsilon: float = 0.25, **kwargs) -> ProtocolResult:
        """Set-intersection join size ``|A ∘ B| = ||A B||_0`` (p = 0)."""
        return self.lp_norm(0.0, epsilon, **kwargs)

    def natural_join_size(self) -> ProtocolResult:
        """Exact natural-join size ``|A ⋈ B| = ||A B||_1`` (Remark 2)."""
        protocol = ExactL1Protocol(seed=self._next_seed())
        return protocol.run(self.a, self.b)

    # ------------------------------------------------------------- sampling
    def l0_sample(self, epsilon: float = 0.25, **kwargs) -> ProtocolResult:
        """Uniform sample from the non-zero entries of ``A B`` (Thm 3.2)."""
        protocol = L0SamplingProtocol(epsilon, seed=self._next_seed(), **kwargs)
        return protocol.run(self.a, self.b)

    def l1_sample(self) -> ProtocolResult:
        """Sample an entry of ``A B`` proportionally to its value (Remark 3)."""
        protocol = L1SamplingProtocol(seed=self._next_seed())
        return protocol.run(self.a, self.b)

    # ----------------------------------------------------------------- linf
    def linf(self, epsilon: float = 0.25, **kwargs) -> ProtocolResult:
        """(2 + eps)-approximation of ``||A B||_inf`` for binary inputs (Thm 4.1)."""
        if not self.is_binary:
            raise ValueError(
                "the (2+eps) protocol needs binary matrices; use linf_kappa(...) "
                "with general integer matrices"
            )
        protocol = TwoPlusEpsilonLinfProtocol(epsilon, seed=self._next_seed(), **kwargs)
        return protocol.run(self.a, self.b)

    def linf_kappa(self, kappa: float, **kwargs) -> ProtocolResult:
        """kappa-approximation of ``||A B||_inf`` (Thm 4.3 binary / Thm 4.8 general)."""
        seed = self._next_seed()
        if self.is_binary:
            protocol: object = KappaApproxLinfProtocol(kappa, seed=seed, **kwargs)
        else:
            protocol = GeneralMatrixLinfProtocol(kappa, seed=seed, **kwargs)
        return protocol.run(self.a, self.b)

    # ------------------------------------------------------------- scale-out
    def as_cluster(self, num_sites: int, *, seed: int | None = None):
        """Re-home this estimator in the k-site coordinator model.

        The rows of ``A`` are sharded evenly across ``num_sites`` sites and
        ``B`` moves to the coordinator; the returned
        :class:`repro.multiparty.ClusterEstimator` answers the same queries
        over the metered star network.  With ``num_sites=2`` the k-party
        runtime reduces to the two-party protocols.
        """
        from repro.multiparty.estimator import ClusterEstimator

        return ClusterEstimator.from_matrix(self.a, self.b, num_sites, seed=seed)

    # -------------------------------------------------------- heavy hitters
    def heavy_hitters(
        self, phi: float, epsilon: float, *, p: float = 1.0, **kwargs
    ) -> ProtocolResult:
        """``l_p``-(phi, eps) heavy hitters of ``A B`` (Thm 5.1 / Thm 5.3).

        Binary inputs use the cheaper binary protocol automatically.
        """
        seed = self._next_seed()
        if self.is_binary:
            protocol: object = BinaryHeavyHittersProtocol(
                phi, epsilon, p=p, seed=seed, **kwargs
            )
        else:
            protocol = GeneralHeavyHittersProtocol(phi, epsilon, p=p, seed=seed, **kwargs)
        return protocol.run(self.a, self.b)
