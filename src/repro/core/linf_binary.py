"""Algorithms 2 and 3: estimating ``||A B||_inf`` for binary matrices.

Algorithm 2 (Theorem 4.1) gives a ``(2 + eps)``-approximation in 3 rounds and
``O~(n^{1.5}/eps)`` bits; Algorithm 3 (Theorem 4.3) gives a
``kappa``-approximation for ``kappa in [4, n]`` in ``O(1)`` rounds and
``O~(n^{1.5}/kappa)`` bits.

Both share the same skeleton:

1. *Down-scaling by sampling.*  Alice subsamples the 1-entries of ``A`` at
   geometrically decreasing rates ``p_l`` (``(1+eps)^{-l}`` for Algorithm 2,
   ``2^{-l}`` for Algorithm 3) to obtain nested matrices ``A^l``; ``||A^l
   B||_1`` is computed cheaply via Remark 2 (Alice sends the column sums of
   every ``A^l``), and the first level ``l*`` whose ``l_1`` mass falls below
   a threshold (``gamma n^2`` resp. ``alpha n^2 / kappa``) is selected.

2. *Per-item index exchange* (:func:`repro.core.exchange.exchange_item_supports`):
   for every shared item the party with fewer incident sets ships its index
   list, so the two parties end up with an additive split
   ``C_A + C_B = A^{l*} B``.

3. The output is ``max(||C_A||_inf, ||C_B||_inf) / p_{l*}`` — within a
   factor ``2`` because a single entry is split across at most the two
   shares, and within ``(1 + eps)`` of ``||C||_inf`` after rescaling because
   the sampling preserves large entries (Lemma 4.2).

Algorithm 3 additionally applies *universe sampling* (each shared item is
kept with probability ``q = min(alpha/kappa, 1)``) before the level search,
which is what improves the bound from ``O~(n^{1.5}/sqrt(kappa))`` to
``O~(n^{1.5}/kappa)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.comm import bitcost
from repro.comm.party import Party
from repro.comm.protocol import Protocol
from repro.core.exchange import exchange_item_supports


def _require_binary(matrix: np.ndarray, who: str) -> np.ndarray:
    matrix = np.asarray(matrix)
    if not np.all((matrix == 0) | (matrix == 1)):
        raise ValueError(f"{who}'s matrix must be binary for this protocol")
    return matrix.astype(np.int64)


class _NestedSampler:
    """Nested subsamples of the 1-entries of ``a`` at geometric keep-rates.

    A single uniform priority per 1-entry makes the levels nested (level
    ``l`` keeps an entry iff its priority is below ``keep_rates[l]``), the
    coupling the paper's between-level Chernoff argument relies on.  Levels
    are materialised lazily: only the selected level's matrix is built.
    """

    def __init__(self, a: np.ndarray, keep_rates: np.ndarray, rng: np.random.Generator) -> None:
        self.ones = a != 0
        self.keep_rates = np.asarray(keep_rates, dtype=float)
        self.priorities = rng.uniform(size=a.shape)

    def column_sums(self) -> np.ndarray:
        """Column sums of every level matrix, shape ``(levels, n_items)``."""
        return np.stack(
            [
                (self.ones & (self.priorities < rate)).sum(axis=0)
                for rate in self.keep_rates
            ]
        )

    def level_matrix(self, level: int) -> np.ndarray:
        """Materialise the binary matrix of one level."""
        rate = self.keep_rates[level]
        return (self.ones & (self.priorities < rate)).astype(np.int64)


def _select_level(
    alice: Party,
    bob: Party,
    sampler: _NestedSampler,
    b: np.ndarray,
    threshold: float,
    *,
    label_prefix: str,
) -> tuple[int, np.ndarray]:
    """Rounds 1-2 of the skeleton: pick the first level with small l1 mass.

    Alice sends the column sums of every level matrix (Remark 2 applied per
    level); Bob computes ``||A^l B||_1`` for each level, picks the first
    ``l*`` at or below ``threshold`` and announces it.
    """
    column_sums = sampler.column_sums()
    n_rows = int(sampler.ones.shape[0])
    bits = column_sums.size * bitcost.bits_for_index(max(n_rows + 1, 2))
    alice.send(bob, column_sums, label=f"{label_prefix}level-column-sums", bits=bits)

    row_sums = b.sum(axis=1).astype(float)
    masses = column_sums.astype(float) @ row_sums
    below = np.flatnonzero(masses <= threshold)
    l_star = int(below[0]) if below.size else len(masses) - 1
    bob.send(
        alice,
        l_star,
        label=f"{label_prefix}level-choice",
        bits=bitcost.bits_for_index(max(len(masses), 2)),
    )
    return l_star, masses


def _split_and_take_max(
    alice: Party,
    bob: Party,
    level_matrix: np.ndarray,
    b: np.ndarray,
    *,
    label_prefix: str,
) -> tuple[float, dict]:
    """Steps 7-14 of Algorithm 2: index exchange and the 2-way maximum."""
    c_alice, c_bob, info = exchange_item_supports(
        alice, bob, level_matrix, b, label_prefix=label_prefix, send_u_counts=False
    )
    alice_max = float(c_alice.max()) if c_alice.size else 0.0
    bob_max = float(c_bob.max()) if c_bob.size else 0.0
    alice.send(bob, alice_max, label=f"{label_prefix}alice-share-max", bits=bitcost.FLOAT_BITS)
    return max(alice_max, bob_max), info


class TwoPlusEpsilonLinfProtocol(Protocol):
    """Algorithm 2: ``(2 + eps)``-approximation of ``||A B||_inf`` (binary).

    Parameters
    ----------
    epsilon:
        Approximation slack; the output is within a ``(2 + eps)`` factor of
        ``||A B||_inf`` with the protocol's success probability.
    gamma_constant:
        The threshold is ``gamma = gamma_constant * log(n) / eps^2`` (the
        paper uses ``10^4``; the default is laptop-scale).  When
        ``gamma * n^2 >= ||A B||_1`` no down-scaling happens and the protocol
        is exact up to the 2-way split.
    gamma:
        Explicit threshold override (takes precedence over
        ``gamma_constant``).
    """

    name = "linf-binary-2plus-eps"

    def __init__(
        self,
        epsilon: float = 0.25,
        *,
        gamma_constant: float = 100.0,
        gamma: float | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if not 0 < epsilon <= 1:
            raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
        self.epsilon = float(epsilon)
        self.gamma_constant = float(gamma_constant)
        self.gamma = gamma

    def _execute(self, alice: Party, bob: Party):
        a = _require_binary(alice.data, "Alice")
        b = _require_binary(bob.data, "Bob")
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"inner dimensions differ: {a.shape} vs {b.shape}")
        n = max(a.shape[0], a.shape[1], b.shape[1])

        ones_in_a = int(a.sum())
        if ones_in_a == 0 or int(b.sum()) == 0:
            alice.send(bob, 0, label="empty", bits=1)
            return 0.0, {"level": 0, "keep_rate": 1.0}

        gamma = (
            self.gamma
            if self.gamma is not None
            else self.gamma_constant * math.log(max(n, 2)) / self.epsilon**2
        )
        threshold = gamma * a.shape[0] * b.shape[1]

        num_levels = int(math.ceil(math.log(max(ones_in_a, 2)) / math.log1p(self.epsilon))) + 1
        keep_rates = (1.0 + self.epsilon) ** (-np.arange(num_levels))
        sampler = _NestedSampler(a, keep_rates, alice.rng)

        l_star, masses = _select_level(alice, bob, sampler, b, threshold, label_prefix="alg2/")
        keep_rate = float(keep_rates[l_star])

        shared_max, info = _split_and_take_max(
            alice, bob, sampler.level_matrix(l_star), b, label_prefix="alg2/"
        )
        estimate = shared_max / keep_rate
        details = {
            "level": l_star,
            "keep_rate": keep_rate,
            "level_l1_mass": float(masses[l_star]),
            "threshold": threshold,
            "exchanged_indices": info["exchanged_indices"],
        }
        return estimate, details


class KappaApproxLinfProtocol(Protocol):
    """Algorithm 3: ``kappa``-approximation of ``||A B||_inf`` (binary).

    Parameters
    ----------
    kappa:
        Target approximation factor (the paper analyses ``kappa in [4, n]``).
    alpha_constant:
        ``alpha = alpha_constant * log(n)``; both the universe-sampling rate
        ``q = min(alpha/kappa, 1)`` and the level threshold
        ``alpha * n^2 / kappa`` use it.  The paper's constant is ``10^4``.
    """

    name = "linf-binary-kappa"

    def __init__(
        self,
        kappa: float,
        *,
        alpha_constant: float = 32.0,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if kappa < 1:
            raise ValueError(f"kappa must be >= 1, got {kappa}")
        self.kappa = float(kappa)
        self.alpha_constant = float(alpha_constant)

    def _execute(self, alice: Party, bob: Party):
        a = _require_binary(alice.data, "Alice")
        b = _require_binary(bob.data, "Bob")
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"inner dimensions differ: {a.shape} vs {b.shape}")
        n = max(a.shape[0], a.shape[1], b.shape[1])
        n_items = a.shape[1]

        alpha = self.alpha_constant * math.log(max(n, 2))
        q = min(alpha / self.kappa, 1.0)

        # Universe sampling: keep each shared item (column of A) with prob q.
        kept_items = alice.rng.uniform(size=n_items) < q
        a_prime = a.copy()
        a_prime[:, ~kept_items] = 0

        # Remark 2 on both A and A': Alice ships both column-sum vectors.
        column_sums_a = a.sum(axis=0)
        column_sums_a_prime = a_prime.sum(axis=0)
        bits = 2 * n_items * bitcost.bits_for_index(max(int(a.shape[0]) + 1, 2))
        alice.send(
            bob,
            {"A": column_sums_a, "A_prime": column_sums_a_prime},
            label="alg3/column-sums",
            bits=bits,
        )
        row_sums = b.sum(axis=1).astype(float)
        c_l1 = float(column_sums_a.astype(float) @ row_sums)
        d_l1 = float(column_sums_a_prime.astype(float) @ row_sums)

        if d_l1 == 0:
            value = 0.0 if c_l1 == 0 else 1.0
            bob.send(alice, value, label="alg3/degenerate-output", bits=bitcost.FLOAT_BITS)
            return value, {"universe_keep_rate": q, "degenerate": True}

        ones_in_a_prime = max(int(a_prime.sum()), 2)
        num_levels = int(math.ceil(math.log2(ones_in_a_prime))) + 1
        keep_rates = 2.0 ** (-np.arange(num_levels))
        sampler = _NestedSampler(a_prime, keep_rates, alice.rng)
        threshold = alpha * a.shape[0] * b.shape[1] / self.kappa

        l_star, masses = _select_level(alice, bob, sampler, b, threshold, label_prefix="alg3/")
        keep_rate = float(keep_rates[l_star])

        shared_max, info = _split_and_take_max(
            alice, bob, sampler.level_matrix(l_star), b, label_prefix="alg3/"
        )
        estimate = shared_max / (q * keep_rate)
        if estimate == 0.0 and c_l1 > 0:
            # All surviving mass vanished after subsampling; the paper's
            # fallback is to output 1, which is a valid kappa-approximation
            # because event E5 bounds every entry by kappa/4 in this case.
            estimate = 1.0
        details = {
            "universe_keep_rate": q,
            "level": l_star,
            "keep_rate": keep_rate,
            "level_l1_mass": float(masses[l_star]),
            "threshold": threshold,
            "exchanged_indices": info["exchanged_indices"],
        }
        return estimate, details
