"""Algorithms 2 and 3: estimating ``||A B||_inf`` for binary matrices.

Algorithm 2 (Theorem 4.1) gives a ``(2 + eps)``-approximation in 3 rounds and
``O~(n^{1.5}/eps)`` bits; Algorithm 3 (Theorem 4.3) gives a
``kappa``-approximation for ``kappa in [4, n]`` in ``O(1)`` rounds and
``O~(n^{1.5}/kappa)`` bits.

Both share the same skeleton — down-scaling by nested sampling, per-level
column sums (Remark 2) to select a level, the per-item index exchange
(:mod:`repro.engine.exchange`), and a rescaled maximum over the additive
shares; Algorithm 3 additionally applies universe sampling before the level
search.  The implementations live in :mod:`repro.engine.linf` (k-site);
these classes are the two-party ``k = 1`` facades.
"""

from __future__ import annotations

from repro.core.facade import EngineBackedProtocol
from repro.engine.linf import (
    StarKappaApproxLinfProtocol,
    StarTwoPlusEpsilonLinfProtocol,
)

__all__ = ["KappaApproxLinfProtocol", "TwoPlusEpsilonLinfProtocol"]


class TwoPlusEpsilonLinfProtocol(EngineBackedProtocol):
    """Algorithm 2: ``(2 + eps)``-approximation of ``||A B||_inf`` (binary).

    Parameters
    ----------
    epsilon:
        Approximation slack; the output is within a ``(2 + eps)`` factor of
        ``||A B||_inf`` with the protocol's success probability.
    gamma_constant:
        The threshold is ``gamma = gamma_constant * log(n) / eps^2`` (the
        paper uses ``10^4``; the default is laptop-scale).  When
        ``gamma * n^2 >= ||A B||_1`` no down-scaling happens and the protocol
        is exact up to the 2-way split.
    gamma:
        Explicit threshold override (takes precedence over
        ``gamma_constant``).
    """

    name = "linf-binary-2plus-eps"
    engine_protocol = StarTwoPlusEpsilonLinfProtocol


class KappaApproxLinfProtocol(EngineBackedProtocol):
    """Algorithm 3: ``kappa``-approximation of ``||A B||_inf`` (binary).

    Parameters
    ----------
    kappa:
        Target approximation factor (the paper analyses ``kappa in [4, n]``).
    alpha_constant:
        ``alpha = alpha_constant * log(n)``; both the universe-sampling rate
        ``q = min(alpha/kappa, 1)`` and the level threshold
        ``alpha * n^2 / kappa`` use it.  The paper's constant is ``10^4``.
    """

    name = "linf-binary-kappa"
    engine_protocol = StarKappaApproxLinfProtocol
