"""Success-probability boosting via the median trick.

Every estimation protocol in the paper succeeds "with constant probability";
the paper then notes (e.g. after Theorem 3.1) that the success probability
can be boosted to ``1 - 1/n^10`` by running ``O(log n)`` independent copies
and taking the median, paying the same factor in communication.

:class:`MedianBoostedProtocol` implements exactly that as a combinator: it
wraps any scalar-valued protocol factory, runs ``repetitions`` independent
copies (fresh randomness each), outputs the median estimate, and reports the
summed communication.  Rounds are reported as the maximum over the copies:
the copies are independent and can run in parallel, which is the standard
convention for the round complexity of repeated protocols.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.comm.protocol import CostReport, Protocol, ProtocolResult


class MedianBoostedProtocol(Protocol):
    """Run ``repetitions`` copies of a scalar protocol and take the median.

    Parameters
    ----------
    protocol_factory:
        Callable ``seed -> Protocol`` building one independent copy.
    repetitions:
        Number of copies; ``O(log n)`` copies boost a constant success
        probability to ``1 - 1/poly(n)``.  Use :meth:`repetitions_for` to
        size it from a target failure probability.
    """

    name = "median-boosted"

    def __init__(
        self,
        protocol_factory: Callable[[int], Protocol],
        repetitions: int = 9,
        *,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        self.protocol_factory = protocol_factory
        self.repetitions = int(repetitions)

    @staticmethod
    def repetitions_for(n: int, *, failure_exponent: float = 10.0) -> int:
        """Copies needed for failure probability ``1/n^failure_exponent``.

        Standard Chernoff bound for boosting a 2/3-success estimator by
        medians: ``O(log(1/delta))`` copies; the constant used here is the
        usual ``18 ln(1/delta)`` rounded to the next odd integer.
        """
        if n < 2:
            return 1
        delta = float(n) ** (-failure_exponent)
        needed = int(math.ceil(18.0 * math.log(1.0 / delta)))
        return needed + 1 if needed % 2 == 0 else needed

    # ------------------------------------------------------------------ run
    def run(self, alice_data, bob_data) -> ProtocolResult:
        root = np.random.default_rng(self.seed)
        estimates: list[float] = []
        total_bits = 0
        alice_bits = 0
        bob_bits = 0
        max_rounds = 0
        breakdown: dict[str, int] = {}
        for _ in range(self.repetitions):
            copy_seed = int(root.integers(0, 2**31 - 1))
            result = self.protocol_factory(copy_seed).run(alice_data, bob_data)
            estimates.append(float(result.value))
            total_bits += result.cost.total_bits
            alice_bits += result.cost.alice_bits
            bob_bits += result.cost.bob_bits
            max_rounds = max(max_rounds, result.cost.rounds)
            for label, bits in result.cost.breakdown.items():
                breakdown[label] = breakdown.get(label, 0) + bits
        cost = CostReport(
            total_bits=total_bits,
            rounds=max_rounds,
            alice_bits=alice_bits,
            bob_bits=bob_bits,
            breakdown=breakdown,
        )
        details = {"estimates": estimates, "repetitions": self.repetitions}
        return ProtocolResult(value=float(np.median(estimates)), cost=cost, details=details)

    def _execute(self, alice, bob):  # pragma: no cover - run() is overridden
        raise NotImplementedError("MedianBoostedProtocol overrides run() directly")
