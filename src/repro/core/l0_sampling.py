"""Theorem 3.2: one-round ``l_0``-sampling of the non-zero entries of ``A B``.

The goal is to output a uniformly random non-zero entry ``(i, j)`` of
``C = A B`` (each with probability ``(1 +/- eps) / ||C||_0``).  The protocol
composes two linear sketches, both applied to the *columns* of ``C``:

* an ``l_0`` sketch ``S`` (:class:`repro.sketch.l0_sketch.L0Sketch`) to
  estimate ``||C_{*,j}||_0`` for every column ``j`` within ``(1 + eps)``, and
* an ``l_0``-sampler ``T`` (:class:`repro.sketch.l0_sampler.L0Sampler`) to
  draw a uniform non-zero row index inside a chosen column.

Because columns of ``C`` satisfy ``C_{*,j} = A B_{*,j}``, Alice sends ``S A``
and ``T A`` (one round, ``O~(n / eps^2)`` bits) and Bob finishes locally.
The implementation lives in :mod:`repro.engine.l0_sampling` (k-site,
mergeable partial sketches); this class is the two-party ``k = 1`` facade.
"""

from __future__ import annotations

from repro.core.facade import EngineBackedProtocol
from repro.engine.l0_sampling import (  # noqa: F401  (re-exported for compatibility)
    StarL0SamplingProtocol,
    finish_l0_sample,
)

__all__ = ["L0SamplingProtocol", "finish_l0_sample"]


class L0SamplingProtocol(EngineBackedProtocol):
    """One-round ``l_0``-sampling on ``C = A B`` (Theorem 3.2).

    Parameters
    ----------
    epsilon:
        Accuracy of the column-``l_0`` estimates that drive the column
        choice; the sampled distribution is uniform over the support up to a
        ``(1 +/- eps)`` factor.
    sampler_repetitions:
        Independent repetitions inside the per-column ``l_0``-sampler.
    """

    name = "l0-sampling-one-round"
    engine_protocol = StarL0SamplingProtocol
