"""Theorem 3.2: one-round ``l_0``-sampling of the non-zero entries of ``A B``.

The goal is to output a uniformly random non-zero entry ``(i, j)`` of
``C = A B`` (each with probability ``(1 +/- eps) / ||C||_0``).  The protocol
composes two linear sketches, both applied to the *columns* of ``C``:

* an ``l_0`` sketch ``S`` (:class:`repro.sketch.l0_sketch.L0Sketch`) to
  estimate ``||C_{*,j}||_0`` for every column ``j`` within ``(1 + eps)``, and
* an ``l_0``-sampler ``T`` (:class:`repro.sketch.l0_sampler.L0Sampler`) to
  draw a uniform non-zero row index inside a chosen column.

Because columns of ``C`` satisfy ``C_{*,j} = A B_{*,j}``, Alice sends ``S A``
and ``T A`` (one round, ``O~(n / eps^2)`` bits) and Bob finishes locally:
he computes ``S A B`` and ``T A B``, picks a column proportionally to its
estimated ``l_0`` norm, and recovers a uniform non-zero row in that column.
"""

from __future__ import annotations

import numpy as np

from repro.comm import bitcost
from repro.comm.party import Party
from repro.comm.protocol import Protocol
from repro.core.result import SampleOutput
from repro.sketch.l0_sampler import L0Sampler
from repro.sketch.l0_sketch import L0Sketch


def finish_l0_sample(
    l0_sketch: L0Sketch,
    sampler: L0Sampler,
    sketched_c: np.ndarray,
    sampler_c: np.ndarray,
    rng: np.random.Generator,
) -> tuple[SampleOutput, dict]:
    """Receiver-side finish: pick a column by estimated ``l_0`` mass, then
    recover a uniform non-zero row inside it.

    Shared by the two-party protocol (Bob finishes) and the k-party runtime
    (the coordinator finishes on the merged site summaries), so the column
    choice and failure handling cannot drift between the two.
    """
    column_l0 = np.maximum(l0_sketch.estimate_rows_pp(sketched_c.T), 0.0)
    total = float(column_l0.sum())
    if total <= 0:
        return SampleOutput(row=None, col=None), {"column_mass": 0.0}
    col = int(rng.choice(sketched_c.shape[1], p=column_l0 / total))
    outcome = sampler.sample(sampler_c[:, col])
    if not outcome.success:
        return (
            SampleOutput(row=None, col=None),
            {"column_mass": total, "column": col, "sampler_failed": True},
        )
    return (
        SampleOutput(row=int(outcome.index), col=col, value=float(outcome.value)),
        {"column_mass": total, "column": col, "sampler_level": outcome.level},
    )


class L0SamplingProtocol(Protocol):
    """One-round ``l_0``-sampling on ``C = A B`` (Theorem 3.2).

    Parameters
    ----------
    epsilon:
        Accuracy of the column-``l_0`` estimates that drive the column
        choice; the sampled distribution is uniform over the support up to a
        ``(1 +/- eps)`` factor.
    sampler_repetitions:
        Independent repetitions inside the per-column ``l_0``-sampler.
    """

    name = "l0-sampling-one-round"

    def __init__(
        self,
        epsilon: float = 0.25,
        *,
        sampler_repetitions: int = 8,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if not 0 < epsilon <= 1:
            raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
        self.epsilon = float(epsilon)
        self.sampler_repetitions = int(sampler_repetitions)

    def _execute(self, alice: Party, bob: Party):
        a = np.asarray(alice.data)
        b = np.asarray(bob.data)
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"inner dimensions differ: {a.shape} vs {b.shape}")
        n_rows = a.shape[0]

        l0_sketch = L0Sketch.for_accuracy(n_rows, self.epsilon, self.shared_rng)
        sampler = L0Sampler(n_rows, self.shared_rng, repetitions=self.sampler_repetitions)

        sketched_a = l0_sketch.matrix @ a.astype(np.int64)
        sampler_a = sampler.matrix @ a.astype(np.int64)
        payload = {"l0_sketch_of_A": sketched_a, "sampler_of_A": sampler_a}
        bits = bitcost.bits_for_matrix(sketched_a) + bitcost.bits_for_matrix(sampler_a)
        alice.send(bob, payload, label="sketches-of-A", bits=bits)

        # Bob finishes locally: sketches of every column of C.
        sketched_c = sketched_a @ b.astype(np.int64)  # (l0 rows, n_cols)
        sampler_c = sampler_a @ b.astype(np.int64)  # (sampler rows, n_cols)

        return finish_l0_sample(l0_sketch, sampler, sketched_c, sampler_c, bob.rng)
