"""Inner-product similarity join: find the pairs of vectors with large overlap.

The paper connects ``||AB||_inf`` and the heavy hitters of ``AB`` to inner
product similarity joins: Alice holds a collection of (sparse binary) item
vectors, Bob holds another, and they want the cross-site pairs whose inner
product is large — without shipping either collection.

The example compares the paper's binary heavy-hitter protocol (Theorem 5.3)
against the CountSketch / compressed-matrix-multiplication baseline ([32]),
reporting recall, soundness and communication for both.

Run with::

    python examples/similarity_heavy_hitters.py
"""

from __future__ import annotations

from repro.baselines.countsketch_hh import CompressedMatMulHeavyHittersProtocol
from repro.core.heavy_hitters_binary import BinaryHeavyHittersProtocol
from repro.matrices import exact_heavy_hitters, planted_heavy_hitters_pair, product


def evaluate(name: str, reported: set, must: set, may: set, bits: int) -> None:
    recall = 1.0 if not must else len(reported & must) / len(must)
    soundness = 1.0 if not reported else len(reported & may) / len(reported)
    print(f"  {name:<28} reported {len(reported):3d} pairs   "
          f"recall {recall:4.2f}   soundness {soundness:4.2f}   {bits:>9d} bits")


def main() -> None:
    n = 128
    phi, eps = 0.02, 0.01
    a, b, planted = planted_heavy_hitters_pair(
        n, num_heavy=3, heavy_overlap=n // 2, background_density=0.02, seed=5
    )
    c = product(a, b)
    must = exact_heavy_hitters(c, phi, p=1)
    may = exact_heavy_hitters(c, phi - eps, p=1)

    print(f"{n} x {n} binary collections, {len(planted)} planted similar pairs, "
          f"{len(must)} true heavy hitters at phi={phi}\n")
    print(f"Contract: report every pair above phi*||AB||_1, nothing below "
          f"(phi-eps)*||AB||_1\n")

    ours = BinaryHeavyHittersProtocol(phi, eps, seed=1).run(a, b)
    baseline = CompressedMatMulHeavyHittersProtocol(phi, eps, depth=5, seed=1).run(a, b)

    evaluate("binary protocol (Thm 5.3)", ours.value.pairs, must, may,
             ours.cost.total_bits)
    evaluate("CountSketch baseline [32]", baseline.value.pairs, must, may,
             baseline.cost.total_bits)

    print("\nPlanted pairs and how the protocol scored them:")
    for pair in planted:
        estimate = ours.value.estimates.get(pair)
        status = f"~{estimate:.0f} shared items" if estimate else "below threshold"
        print(f"  pair {pair}: exact overlap {int(c[pair])}, reported {status}")


if __name__ == "__main__":
    main()
