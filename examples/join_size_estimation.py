"""Join-size estimation for distributed query optimisation.

Scenario (Section 1.1 of the paper): relation ``R(X, Y)`` lives on one site,
relation ``S(Y, Z)`` on another.  Before deciding a join order, the query
optimiser wants the sizes of the composition ``R ∘ S`` (set-intersection
join) and of the natural join ``R ⋈ S`` — but shipping a relation across the
network just to size a join would defeat the purpose.

This example sizes two candidate joins with the paper's protocols, compares
against the exact answers, and shows the communication spent relative to
shipping the relation.

Run with::

    python examples/join_size_estimation.py
"""

from __future__ import annotations

from repro.joins import DistributedJoinEstimator, Relation, composition_size, natural_join_size


def describe_plan(name: str, left: Relation, right: Relation, *, seed: int) -> dict:
    estimator = DistributedJoinEstimator(left, right, seed=seed)

    composition = estimator.composition_size(epsilon=0.25)
    natural = estimator.natural_join_size()
    ship_relation_bits = left.num_left * left.num_right  # binary matrix

    print(f"Plan {name}: |R| = {len(left)} tuples, |S| = {len(right)} tuples")
    print(f"  natural join size = {natural.value:9.1f}   "
          f"(exact {natural_join_size(left, right)}; "
          f"{natural.cost.total_bits} bits = "
          f"{100 * natural.cost.total_bits / ship_relation_bits:.2f}% of shipping R)")
    print(f"  composition size  ~ {composition.value:9.1f}   "
          f"(exact {composition_size(left, right)}; "
          f"{composition.cost.total_bits} bits — the O~(n/eps) sketch constants "
          "dominate at this toy n, see benchmark E1/E2 for the scaling)\n")
    return {"name": name, "estimated_natural_join": natural.value}


def main() -> None:
    n = 192
    # Plan A joins two sparse relations; plan B joins a sparse with a dense one.
    r_sparse = Relation.random(n, n, density=0.03, seed=1)
    s_sparse = Relation.random(n, n, density=0.03, seed=2)
    s_dense = Relation.random(n, n, density=0.20, seed=3)

    plan_a = describe_plan("A  (R_sparse ⋈ S_sparse)", r_sparse, s_sparse, seed=10)
    plan_b = describe_plan("B  (R_sparse ⋈ S_dense)", r_sparse, s_dense, seed=11)

    cheaper = min([plan_a, plan_b], key=lambda plan: plan["estimated_natural_join"])
    print(f"Optimiser decision: execute plan {cheaper['name'].split()[0]} first "
          "(smaller estimated output).")


if __name__ == "__main__":
    main()
