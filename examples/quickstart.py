"""Quickstart: estimate every statistic of a matrix product the paper studies.

Alice holds a binary matrix ``A`` (rows = sets), Bob holds ``B`` (columns =
sets), and they estimate statistics of ``C = A B`` while the library meters
exactly how many bits they exchanged and in how many rounds.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import MatrixProductEstimator
from repro.matrices import exact_heavy_hitters, exact_linf, exact_lp_pp, product, random_binary_pair


def main() -> None:
    n = 128
    a, b = random_binary_pair(n, density=0.08, seed=7)
    c = product(a, b)  # ground truth, never used by the protocols
    estimator = MatrixProductEstimator(a, b, seed=7)
    naive_bits = n * n  # shipping Alice's whole binary matrix

    print(f"Matrices: {n} x {n} binary, naive exchange would cost {naive_bits} bits\n")

    # --- l_0: set-intersection join size (Theorem 3.1, p = 0) --------------
    result = estimator.join_size(epsilon=0.25)
    print("Set-intersection join size  ||AB||_0")
    print(f"  estimate {result.value:10.1f}   truth {exact_lp_pp(c, 0):10.1f}")
    print(f"  cost     {result.cost.total_bits} bits in {result.cost.rounds} rounds\n")

    # --- l_1: natural join size (Remark 2, exact) ---------------------------
    result = estimator.natural_join_size()
    print("Natural join size           ||AB||_1  (exact)")
    print(f"  value    {result.value:10.1f}   truth {exact_lp_pp(c, 1):10.1f}")
    print(f"  cost     {result.cost.total_bits} bits in {result.cost.rounds} round\n")

    # --- l_2: squared Frobenius norm (Theorem 3.1, p = 2) -------------------
    result = estimator.lp_norm(p=2, epsilon=0.25)
    print("Squared Frobenius norm      ||AB||_2^2")
    print(f"  estimate {result.value:10.1f}   truth {exact_lp_pp(c, 2):10.1f}")
    print(f"  cost     {result.cost.total_bits} bits in {result.cost.rounds} rounds\n")

    # --- l_inf: the most similar pair of sets (Theorem 4.1) -----------------
    result = estimator.linf(epsilon=0.25)
    print("Maximum intersection size   ||AB||_inf  (2+eps approximation)")
    print(f"  estimate {result.value:10.1f}   truth {exact_linf(c):10.1f}")
    print(f"  cost     {result.cost.total_bits} bits in {result.cost.rounds} rounds\n")

    # --- heavy hitters (Theorem 5.3) ----------------------------------------
    phi, eps = 0.02, 0.01
    result = estimator.heavy_hitters(phi=phi, epsilon=eps)
    truth = exact_heavy_hitters(c, phi, p=1)
    print(f"Heavy hitters (phi={phi}, eps={eps})")
    print(f"  reported {len(result.value.pairs)} pairs, exact count {len(truth)}")
    print(f"  cost     {result.cost.total_bits} bits in {result.cost.rounds} rounds\n")

    # --- sampling (Theorem 3.2 and Remark 3) --------------------------------
    l0_sample = estimator.l0_sample(epsilon=0.3).value
    l1_sample = estimator.l1_sample().value
    print("Samples from the product's support")
    if l0_sample.success:
        print(f"  uniform (l_0) sample:     entry {l0_sample.as_pair()} "
              f"with value {l0_sample.value}")
    if l1_sample.success:
        value = int(c[l1_sample.row, l1_sample.col])
        print(f"  value-weighted (l_1) sample: entry {l1_sample.as_pair()} "
              f"with value {value}")
    print()

    # --- runtime conditions: a k-site run under simulated WAN links ---------
    # Same protocols, same bits — but the star's links now carry 10 ms of
    # latency at 1 Mbit/s, so the cost report gains a simulated makespan
    # (critical path over rounds, links transferring in parallel).
    from repro import ClusterEstimator
    from repro.comm import LinkModel, NetworkConditions

    conditions = NetworkConditions(LinkModel(latency=0.010, bandwidth=1e6))
    cluster = ClusterEstimator.from_matrix(a, b, num_sites=4, seed=7, conditions=conditions)
    result = cluster.join_size(epsilon=0.25)
    print("k-site run under simulated WAN conditions (10 ms, 1 Mbit/s links)")
    print(f"  estimate {result.value:10.1f}   truth {exact_lp_pp(c, 0):10.1f}")
    print(f"  cost     {result.cost.total_bits} bits in {result.cost.rounds} rounds, "
          f"busiest link {result.cost.max_link_bits} bits")
    print(f"  simulated makespan {result.cost.makespan * 1e3:.1f} ms "
          f"(per round: {[round(s * 1e3, 1) for s in result.cost.makespan_per_round.values()]} ms)")


if __name__ == "__main__":
    np.set_printoptions(suppress=True)
    main()
