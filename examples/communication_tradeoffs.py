"""Communication/accuracy trade-offs: regenerate the paper's headline comparisons.

Three mini-studies, each printing a small table:

1. ``||AB||_0`` estimation: two-round Algorithm 1 vs the one-round [16]
   baseline as epsilon shrinks (the O~(n/eps) vs O~(n/eps^2) separation).
2. ``||AB||_inf`` on binary matrices: the (2+eps) protocol vs the naive
   n^2-bit exchange as n grows (the n^1.5 vs n^2 separation).
3. ``||AB||_inf`` approximation factor kappa vs communication, binary
   (O~(n^1.5/kappa)) against general integer matrices (O~(n^2/kappa^2)).

Run with::

    python examples/communication_tradeoffs.py
"""

from __future__ import annotations

from repro.baselines.naive import NaiveLinfProtocol
from repro.baselines.one_round import OneRoundLpNormProtocol
from repro.core.linf_binary import KappaApproxLinfProtocol, TwoPlusEpsilonLinfProtocol
from repro.core.linf_general import GeneralMatrixLinfProtocol
from repro.core.lp_norm import LpNormProtocol
from repro.matrices import (
    integer_matrix_pair,
    planted_max_overlap_pair,
    random_binary_pair,
)


def study_rounds_vs_epsilon() -> None:
    print("1. ||AB||_0: two rounds (Alg. 1) vs one round ([16]) — bits as eps shrinks")
    n = 128
    a, b = random_binary_pair(n, density=0.08, seed=1)
    print(f"   {'eps':>6} {'two-round bits':>16} {'one-round bits':>16} {'ratio':>7}")
    for eps in (0.5, 0.35, 0.25, 0.15):
        ours = LpNormProtocol(0.0, eps, seed=2).run(a, b)
        baseline = OneRoundLpNormProtocol(0.0, eps, seed=2).run(a, b)
        ratio = baseline.cost.total_bits / ours.cost.total_bits
        print(f"   {eps:>6.2f} {ours.cost.total_bits:>16d} "
              f"{baseline.cost.total_bits:>16d} {ratio:>7.2f}")
    print()


def study_linf_vs_naive() -> None:
    print("2. ||AB||_inf (binary): (2+eps) protocol vs naive n^2 exchange — bits as n grows")
    print(f"   {'n':>6} {'protocol bits':>15} {'naive bits':>12} {'saving':>8}")
    for n in (96, 160, 256, 384):
        a, b, _ = planted_max_overlap_pair(n, overlap=n // 4, seed=3)
        ours = TwoPlusEpsilonLinfProtocol(0.5, seed=4).run(a, b)
        naive = NaiveLinfProtocol(seed=4).run(a, b)
        saving = 1 - ours.cost.total_bits / naive.cost.total_bits
        print(f"   {n:>6d} {ours.cost.total_bits:>15d} {naive.cost.total_bits:>12d} "
              f"{100 * saving:>7.1f}%")
    print()


def study_kappa_tradeoff() -> None:
    print("3. ||AB||_inf: accuracy (kappa) vs communication, binary vs general matrices")
    n = 128
    a_bin, b_bin = random_binary_pair(n, density=0.3, seed=5)
    a_int, b_int = integer_matrix_pair(n, planted_value=8, seed=5)
    print(f"   {'kappa':>6} {'binary bits (n^1.5/k)':>22} {'general bits (n^2/k^2)':>24}")
    for kappa in (4, 8, 16):
        binary = KappaApproxLinfProtocol(kappa, seed=6).run(a_bin, b_bin)
        general = GeneralMatrixLinfProtocol(kappa, seed=6).run(a_int, b_int)
        print(f"   {kappa:>6d} {binary.cost.total_bits:>22d} {general.cost.total_bits:>24d}")
    print()


def main() -> None:
    study_rounds_vs_epsilon()
    study_linf_vs_naive()
    study_kappa_tradeoff()


if __name__ == "__main__":
    main()
