"""Service quickstart: a real 4-site cluster over localhost sockets.

Spawns the coordinator as an asyncio TCP server in this process and four
site agents as independent OS subprocesses (``python -m repro.service.cli
site``), then runs one-shot queries and a streamed epoch over the live
sockets — and checks, query by query, that the answers are bit-identical
to an in-process run and that the bytes observed at the sockets match the
wire meter exactly (``observed_bytes * 8 == wire_bits``).

Run with::

    python examples/service_quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ClusterEstimator
from repro.service import local_cluster


def main() -> None:
    rng = np.random.default_rng(7)
    a = rng.integers(0, 3, size=(48, 32))
    b = rng.integers(0, 3, size=(32, 24))
    shards = np.array_split(a, 4, axis=0)

    # The in-process reference: same shards, same seed, same query order.
    reference = ClusterEstimator(shards, b, seed=7)

    print("Spawning a 4-site cluster on localhost (sites are OS processes)...")
    with local_cluster(shards, b, seed=7) as (server, client):
        host, port = server.address
        print(f"  coordinator listening on {host}:{port}, "
              f"{client.cluster['k']} sites registered\n")

        # --- one-shot queries over real sockets ----------------------------
        for method, kwargs in [
            ("lp_norm", {"p": 2.0, "epsilon": 0.3}),
            ("l0_sample", {"epsilon": 0.3}),
            ("heavy_hitters", {"phi": 0.3, "epsilon": 0.2}),
        ]:
            remote = client.query(method, **kwargs)
            local = getattr(reference, method)(**kwargs)
            report = client.last_service
            identical = repr(remote.value) == repr(local.value)
            print(f"{method}({', '.join(f'{k}={v}' for k, v in kwargs.items())})")
            print(f"  remote value {remote.value!r:.60}")
            print(f"  bit-identical to in-process run: {identical}")
            print(f"  simulated meter {report['simulated_bits']} bits in "
                  f"{report['rounds']} rounds")
            print(f"  observed at sockets {report['observed_bytes']} bytes "
                  f"x 8 == wire meter {report['wire_bits']} bits: "
                  f"{report['observed_bytes'] * 8 == report['wire_bits']}\n")

        # --- a streamed epoch over the same connections --------------------
        client.query("stream_open")
        offset = 0
        for index, shard in enumerate(shards):
            client.query("stream_ingest", site=index,
                         rows=offset + np.arange(shard.shape[0]), deltas=shard)
            offset += shard.shape[0]
        epoch = client.query("stream_sync")
        report = client.last_service
        live = client.query("stream_live_lp_norm", p=2.0)
        print("streamed epoch (deltas shipped as real wire bytes)")
        print(f"  uploaded {epoch.total_bytes} bytes across "
              f"{len(epoch.upload_bytes)} sites; live ||AB||_2^2 = {live:.1f}")
        print(f"  all three meters coincide (simulated == wire == observed*8): "
              f"{report['simulated_bits'] == report['wire_bits'] == report['observed_bytes'] * 8}")

    print("\nCluster torn down; site processes reaped.")


if __name__ == "__main__":
    np.set_printoptions(suppress=True)
    main()
