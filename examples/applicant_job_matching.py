"""Applicant/job matching: the paper's motivating set-intersection application.

There are ``n`` applicants, each with a set of skills, and ``n`` jobs, each
with a set of required skills; applicants live in one database, jobs in
another.  The questions from Section 1.1:

* how many applicant/job pairs share at least one skill?  (``||AB||_0``)
* which pair has the largest overlap — the "most qualified" match?
  (``||AB||_inf`` / heavy hitters)
* show me a random feasible match.  (``l_0``-sampling)

Run with::

    python examples/applicant_job_matching.py
"""

from __future__ import annotations

import numpy as np

from repro import MatrixProductEstimator
from repro.matrices import exact_linf, exact_lp_pp, product
from repro.matrices.setview import sets_to_column_matrix, sets_to_row_matrix


def build_population(num_people: int, num_skills: int, seed: int):
    """Applicants with Zipf-ish skill counts; jobs requiring focused skill sets.

    A few "specialist" jobs are planted to share a large skill block with one
    applicant, so there is a clearly best match to find.
    """
    rng = np.random.default_rng(seed)
    applicant_skills = []
    for _ in range(num_people):
        count = min(num_skills, 1 + rng.geometric(0.15))
        applicant_skills.append(set(rng.choice(num_skills, size=count, replace=False)))
    job_requirements = []
    for _ in range(num_people):
        count = min(num_skills, 1 + rng.geometric(0.3))
        job_requirements.append(set(rng.choice(num_skills, size=count, replace=False)))

    # Plant the standout match: applicant 7 has nearly all the skills job 3 needs.
    specialist_skills = set(rng.choice(num_skills, size=60, replace=False))
    applicant_skills[7] |= specialist_skills
    job_requirements[3] = set(list(specialist_skills)[:50])
    return applicant_skills, job_requirements


def main() -> None:
    num_people, num_skills = 150, 150
    applicants, jobs = build_population(num_people, num_skills, seed=42)

    a = sets_to_row_matrix(applicants, universe=num_skills)       # Alice: applicants
    b = sets_to_column_matrix(jobs, universe=num_skills)          # Bob: jobs
    c = product(a, b)
    estimator = MatrixProductEstimator(a, b, seed=42)

    matches = estimator.join_size(epsilon=0.25)
    print(f"Applicant/job pairs sharing a skill: ~{matches.value:.0f} "
          f"(exact {exact_lp_pp(c, 0):.0f}), "
          f"{matches.cost.total_bits} bits exchanged")

    best = estimator.linf(epsilon=0.25)
    print(f"Largest skill overlap: ~{best.value:.0f} skills "
          f"(exact {exact_linf(c):.0f}), {best.cost.total_bits} bits")

    heavy = estimator.heavy_hitters(phi=0.01, epsilon=0.005)
    print(f"Stand-out matches (heavy hitters): {sorted(heavy.value.pairs)}")
    for (applicant, job), overlap in sorted(heavy.value.estimates.items()):
        print(f"  applicant {applicant} <-> job {job}: ~{overlap:.0f} shared skills "
              f"(exact {int(c[applicant, job])})")

    sample = estimator.l0_sample(epsilon=0.3).value
    if sample.success:
        print(f"Random feasible match: applicant {sample.row} <-> job {sample.col} "
              f"({int(sample.value)} shared skills)")


if __name__ == "__main__":
    main()
